package client

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/store"
	"repro/internal/workload"
)

func open(t *testing.T, cfg Config) *DB {
	t.Helper()
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := db.Close(); err != nil {
			t.Errorf("Close (verify): %v", err)
		}
	})
	return db
}

// TestSessionLifecycle drives one local session begin → read → write and
// checks the terminal-state protocol around it.
func TestSessionLifecycle(t *testing.T) {
	db := open(t, Config{Shards: 4, Policy: "greedy-c1", Verify: true})
	ctx := context.Background()

	txn, err := db.Begin(ctx, WithFootprint(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Read(ctx, 4); err != nil {
		t.Fatal(err)
	}
	if err := txn.Write(ctx, 0); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if txn.Err() != nil {
		t.Fatalf("Err after commit = %v, want nil", txn.Err())
	}
	// Operations after commit are protocol errors; the commit stands.
	if err := txn.Read(ctx, 4); !errors.Is(err, ErrProtocol) {
		t.Fatalf("read after commit = %v, want ErrProtocol", err)
	}
	if err := txn.Abort(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("abort after commit = %v, want ErrProtocol", err)
	}
	if s := db.Stats(); s.Completed != 1 {
		t.Fatalf("Completed = %d, want 1", s.Completed)
	}

	// Abort path: idempotent, and later operations report ErrTxnAborted.
	txn2, err := db.Begin(ctx, WithFootprint(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := txn2.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := txn2.Abort(); err != nil {
		t.Fatalf("second abort = %v, want nil", err)
	}
	if err := txn2.Read(ctx, 1); !errors.Is(err, ErrTxnAborted) {
		t.Fatalf("read after abort = %v, want ErrTxnAborted", err)
	}
	if !errors.Is(txn2.Err(), ErrTxnAborted) {
		t.Fatalf("Err after abort = %v, want ErrTxnAborted", txn2.Err())
	}
}

// TestCrossShardSession commits a session spanning two partitions through
// the 2PC path while a local bystander on a participating shard survives.
func TestCrossShardSession(t *testing.T) {
	db := open(t, Config{Shards: 4, Policy: "greedy-c1", Verify: true})
	ctx := context.Background()

	bystander, err := db.Begin(ctx, WithFootprint(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := bystander.Read(ctx, 4); err != nil {
		t.Fatal(err)
	}

	cross, err := db.Begin(ctx, WithFootprint(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := cross.Read(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := cross.Write(ctx, 2); err != nil {
		t.Fatalf("cross commit: %v", err)
	}
	if err := bystander.Write(ctx, 4); err != nil {
		t.Fatalf("bystander survived 2PC but could not commit: %v", err)
	}

	s := db.Stats()
	if s.CrossTxns != 1 || s.Prepares != 2 {
		t.Fatalf("stats = %+v, want 1 cross txn / 2 prepares", s)
	}
	if s.BarrierKills != 0 {
		t.Fatalf("BarrierKills = %d, want 0", s.BarrierKills)
	}
}

// TestWithShards declares participants directly and roams both partitions.
func TestWithShards(t *testing.T) {
	db := open(t, Config{Shards: 4, Verify: true})
	ctx := context.Background()

	txn, err := db.Begin(ctx, WithShards(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Entities 5 (shard 1) and 7 (shard 3) were never named at Begin.
	if err := txn.Read(ctx, 5); err != nil {
		t.Fatal(err)
	}
	if err := txn.Read(ctx, 7); err != nil {
		t.Fatal(err)
	}
	if err := txn.Write(ctx); err != nil { // read-only commit
		t.Fatal(err)
	}
	if _, err := db.Begin(ctx, WithShards(4)); !errors.Is(err, ErrProtocol) {
		t.Fatalf("out-of-range shard = %v, want ErrProtocol", err)
	}
}

// TestTaxonomyThroughClient exercises every taxonomy member end to end
// through the session API.
func TestTaxonomyThroughClient(t *testing.T) {
	db := open(t, Config{Shards: 2, Verify: true})
	ctx := context.Background()

	// ErrCycle: T_a and T_b read each other's write targets on shard 0.
	a, _ := db.Begin(ctx, WithFootprint(0, 2))
	b, _ := db.Begin(ctx, WithFootprint(0, 2))
	if err := a.Read(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Read(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(ctx, 0); err != nil {
		t.Fatal(err)
	}
	err := a.Write(ctx, 2)
	if !errors.Is(err, ErrCycle) {
		t.Fatalf("cycle-closing write = %v, want ErrCycle", err)
	}
	if !errors.Is(a.Err(), ErrCycle) {
		t.Fatalf("session Err = %v, want ErrCycle", a.Err())
	}

	// ErrCrossCycle: shard-local paths composing into a global cycle.
	c1, _ := db.Begin(ctx, WithFootprint(0, 1))
	c2, _ := db.Begin(ctx, WithFootprint(0, 1))
	if err := c1.Read(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := c2.Read(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := c2.Write(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := c1.Write(ctx, 1); !errors.Is(err, ErrCrossCycle) {
		t.Fatalf("global-cycle write = %v, want ErrCrossCycle", err)
	}

	// ErrMisroute: a local session strays off its partition.
	m, _ := db.Begin(ctx, WithFootprint(0))
	if err := m.Read(ctx, 1); !errors.Is(err, ErrMisroute) {
		t.Fatalf("foreign read = %v, want ErrMisroute", err)
	}
	if err := m.Read(ctx, 0); !errors.Is(err, ErrTxnAborted) {
		t.Fatalf("read after misroute = %v, want ErrTxnAborted", err)
	}

	// ErrProtocol: duplicate WithID against a live session.
	p, err := db.Begin(ctx, WithID(1000), WithFootprint(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Begin(ctx, WithID(1000), WithFootprint(0)); !errors.Is(err, ErrProtocol) {
		t.Fatalf("duplicate WithID = %v, want ErrProtocol", err)
	}
	if err := p.Abort(); err != nil {
		t.Fatal(err)
	}

	// Unknown policy names are protocol errors at Open.
	if _, err := Open(Config{Policy: "alchemy"}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("bad policy = %v, want ErrProtocol", err)
	}

	// ErrClosed: sessions against a closed DB.
	db2, err := Open(Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Begin(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("begin on closed DB = %v, want ErrClosed", err)
	}
}

// TestContextDeadlineAbortsSession: a session whose Begin deadline expires
// while it idles is aborted by the watcher, and both the taxonomy member
// and the context cause are visible.
func TestContextDeadlineAbortsSession(t *testing.T) {
	db := open(t, Config{Shards: 2, Verify: true})
	bg := context.Background()

	ctx, cancel := context.WithTimeout(bg, 20*time.Millisecond)
	defer cancel()
	txn, err := db.Begin(ctx, WithFootprint(0, 1)) // cross: pins + registry state to release
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Read(ctx, 0); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for txn.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("watcher never aborted the expired session")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(txn.Err(), ErrTxnAborted) || !errors.Is(txn.Err(), context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want ErrTxnAborted + DeadlineExceeded", txn.Err())
	}
	if err := txn.Write(bg, 0); !errors.Is(err, ErrTxnAborted) {
		t.Fatalf("write after expiry = %v, want ErrTxnAborted", err)
	}
	s := db.Stats()
	if s.Aborted != 1 {
		t.Fatalf("Aborted = %d, want 1", s.Aborted)
	}
	for i, p := range s.PreparedByShard {
		if p != 0 {
			t.Fatalf("shard %d leaked %d prepared pins", i, p)
		}
	}

	// An already-cancelled context refuses the Begin outright.
	dead, cancel2 := context.WithCancel(bg)
	cancel2()
	if _, err := db.Begin(dead, WithFootprint(0)); !errors.Is(err, context.Canceled) {
		t.Fatalf("begin under cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestBeginContextGovernsLaterOps: operations run under the merge of the
// Begin context and their own, so a dead Begin context aborts the
// transaction even when the operation passes a fresh context (the
// regression was serve-style callers using context.Background() per op).
func TestBeginContextGovernsLaterOps(t *testing.T) {
	db := open(t, Config{Shards: 2, Verify: true})
	bg := context.Background()

	// Op context is Background: the Begin context alone must kill the op.
	ctx, cancel := context.WithCancel(bg)
	txn, err := db.Begin(ctx, WithFootprint(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Read(bg, 0); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := txn.Write(bg, 0); !errors.Is(err, ErrTxnAborted) || !errors.Is(err, context.Canceled) {
		t.Fatalf("write after begin-ctx cancel = %v, want ErrTxnAborted + Canceled", err)
	}

	// Both contexts cancellable: the merged context must still observe the
	// Begin side.
	bctx, bcancel := context.WithCancel(bg)
	defer bcancel()
	octx, ocancel := context.WithCancel(bg)
	defer ocancel()
	txn2, err := db.Begin(bctx, WithFootprint(1))
	if err != nil {
		t.Fatal(err)
	}
	bcancel()
	if err := txn2.Write(octx, 1); !errors.Is(err, ErrTxnAborted) || !errors.Is(err, context.Canceled) {
		t.Fatalf("write under merged ctx = %v, want ErrTxnAborted + Canceled", err)
	}
}

// blockingPolicy wedges its shard inside a GC sweep until the gate closes.
type blockingPolicy struct{ gate chan struct{} }

func (p *blockingPolicy) Name() string         { return "test-block" }
func (p *blockingPolicy) Sweep(sw *core.Sweep) { <-p.gate }

// TestOverloadShedThroughClient saturates the single shard and asserts
// Begin sheds with ErrOverload while a PriorityHigh Begin is admitted —
// and that nothing deadlocks.
func TestOverloadShedThroughClient(t *testing.T) {
	const watermark = 3
	gate := make(chan struct{})
	db := open(t, Config{
		Shards:                1,
		SweepEveryCompletions: 1,
		BatchSize:             1,
		OverloadWatermark:     watermark,
		enginePolicy:          func() core.Policy { return &blockingPolicy{gate: gate} },
	})
	ctx := context.Background()

	// One completion wedges the shard in its post-batch sweep.
	txn, err := db.Begin(ctx, WithFootprint(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Write(ctx, 0); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	highErrs := make([]error, watermark+2)
	for i := range highErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx, err := db.Begin(ctx, WithFootprint(0), WithPriority(PriorityHigh))
			highErrs[i] = err
			if err == nil {
				highErrs[i] = tx.Write(ctx, 0)
			}
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for db.QueueDepths()[0] < watermark {
		if time.Now().After(deadline) {
			t.Fatal("backlog never reached the watermark")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := db.Begin(ctx, WithFootprint(0)); !errors.Is(err, ErrOverload) {
		t.Fatalf("begin on saturated shard = %v, want ErrOverload", err)
	}
	close(gate)
	wg.Wait()
	for i, err := range highErrs {
		if err != nil {
			t.Fatalf("high-priority session %d: %v — PriorityHigh must not shed", i, err)
		}
	}
	if _, err := db.Begin(ctx, WithFootprint(0)); err != nil {
		t.Fatalf("begin after drain: %v", err)
	}
	if s := db.Stats(); s.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", s.Shed)
	}
}

// TestDriveWorkload ports the workload driver onto the client: concurrent
// generators pumped through DB.Drive with a verify-enabled DB, checked by
// the offline CSR referee at Close.
func TestDriveWorkload(t *testing.T) {
	db := open(t, Config{
		Shards:                4,
		Policy:                "greedy-c1",
		SweepEveryCompletions: 3,
		Verify:                true,
	})
	const drivers = 4
	var wg sync.WaitGroup
	for d := 0; d < drivers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			gen := workload.New(workload.Config{
				Entities:         64,
				Txns:             150,
				MaxActive:        4,
				Shards:           4,
				CrossFrac:        0.1,
				DeclareFootprint: true,
				BaseTxnID:        model.TxnID(1_000_000 * (d + 1)),
				RestartAborted:   true,
				Seed:             int64(300 + d),
			})
			db.Drive(gen, 8)
		}(d)
	}
	wg.Wait()
	s := db.Stats()
	if s.Completed == 0 || s.Deleted == 0 || s.CrossTxns == 0 {
		t.Fatalf("driven run did no representative work: %+v", s)
	}
	// Close (deferred by open) runs the CSR referee.
}

// TestRawBatchPath checks the raw step API under the session facade.
func TestRawBatchPath(t *testing.T) {
	db := open(t, Config{Shards: 2, Verify: true})
	results := db.SubmitBatch([]Step{
		model.BeginDeclared(1, 0),
		model.Read(1, 0),
		model.WriteFinal(1, 0),
		model.Read(99, 0),
	})
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results[:3] {
		if !r.Accepted() {
			t.Fatalf("step %d: %v (%v)", i, r.Outcome, r.Err)
		}
	}
	if results[2].CompletedTxn != 1 {
		t.Fatalf("CompletedTxn = %v, want 1", results[2].CompletedTxn)
	}
	if !errors.Is(results[3].Err, ErrTxnAborted) {
		t.Fatalf("unknown txn err = %v, want ErrTxnAborted", results[3].Err)
	}
	if db.Abort(2) {
		t.Fatal("raw Abort of an unknown ID returned true")
	}
}

// TestDurableRoundTrip: sessions against a DataDir-backed DB survive a
// close/reopen — the retained transaction refuses a duplicate Begin, the
// orphaned session is aborted, and the recovery report says so.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	db, err := Open(Config{Shards: 2, Policy: "greedy-c1", DataDir: dir, FsyncBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep := db.Recovery(); rep == nil || rep.RecordsReplayed != 0 {
		t.Fatalf("fresh-dir recovery report = %+v", rep)
	}
	txn, err := db.Begin(ctx, WithID(1), WithFootprint(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Write(ctx, 0, 1); err != nil {
		t.Fatalf("cross commit: %v", err)
	}
	// An orphan: begun, never decided, its session dies with the process.
	if _, err := db.Begin(ctx, WithID(2), WithFootprint(0)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := open(t, Config{Shards: 2, Policy: "greedy-c1", DataDir: dir})
	rep := db2.Recovery()
	if rep.OrphansAborted != 1 {
		t.Fatalf("OrphansAborted = %d, want 1 (report %+v)", rep.OrphansAborted, rep)
	}
	// T1 committed before the crash: still retained, duplicate Begin fails.
	if _, err := db2.Begin(ctx, WithID(1), WithFootprint(0)); !errors.Is(err, ErrProtocol) {
		t.Fatalf("duplicate Begin of retained txn = %v, want ErrProtocol", err)
	}
	// T2 was orphan-aborted: its ID begins fresh and can commit.
	txn2, err := db2.Begin(ctx, WithID(2), WithFootprint(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := txn2.Write(ctx, 0); err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
}

// TestDataDirStoreExclusive: the two durability knobs cannot be combined,
// and a caller-supplied Store works without a DataDir.
func TestDataDirStoreExclusive(t *testing.T) {
	if _, err := Open(Config{Shards: 1, DataDir: t.TempDir(), Store: store.NewMem(1)}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("DataDir+Store = %v, want ErrProtocol", err)
	}
	mem := store.NewMem(2)
	db := open(t, Config{Shards: 2, Policy: "greedy-c1", Store: mem})
	ctx := context.Background()
	txn, err := db.Begin(ctx, WithFootprint(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Write(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if mem.Shard(0).Stats().Records == 0 {
		t.Fatal("caller-supplied store saw no journal records")
	}
}
