package client

import (
	"errors"

	"repro/internal/engine"
)

// The error taxonomy. Every failed operation returns an error wrapping
// exactly one of these sentinels (plus step context), threaded up from the
// engine — the same values, so errors.Is holds across layers. Branch with
// errors.Is, never string matching.
var (
	// ErrCycle: the operation was refused because accepting it would close
	// a cycle in its shard's conflict graph; the transaction aborted.
	ErrCycle = engine.ErrCycle
	// ErrCrossCycle: the cross-arc registry vetoed the operation — it
	// would close a cycle spanning two or more shard graphs; the
	// cross-partition transaction aborted.
	ErrCrossCycle = engine.ErrCrossCycle
	// ErrMisroute: the transaction touched an entity outside its declared
	// footprint's partition (or participant set); it aborted.
	ErrMisroute = engine.ErrMisroute
	// ErrTxnAborted: the session's transaction is not live — it aborted
	// earlier (any cause, context expiry included) or never began.
	ErrTxnAborted = engine.ErrTxnAborted
	// ErrProtocol: the call violated the session protocol (duplicate
	// WithID, operation after commit, unknown policy name, bad option).
	// State is unchanged.
	ErrProtocol = engine.ErrProtocol
	// ErrOverload: admission control shed the Begin — a shard it would run
	// on is over Config.OverloadWatermark. Nothing began; retry later or
	// escalate with WithPriority(PriorityHigh).
	ErrOverload = engine.ErrOverload
	// ErrStragglerAborted: the retention governor reaped the session's
	// transaction — it was the oldest live straggler while retained
	// completed storage sat over Config.RetentionWatermark. Errors carrying
	// it also match ErrTxnAborted; test for this sentinel first to
	// distinguish a reap (retry, shorten the transaction, or escalate with
	// WithPriority(PriorityHigh)) from an ordinary abort.
	ErrStragglerAborted = engine.ErrStragglerAborted
	// ErrClosed: the DB has been closed.
	ErrClosed = engine.ErrClosed
)

// ErrorCode maps an error from this package onto its stable wire code, the
// machine-readable field carried by txgc-serve's protocol v2 responses.
// It returns "" for nil and "internal" for errors outside the taxonomy.
func ErrorCode(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrCycle):
		return "cycle"
	case errors.Is(err, ErrCrossCycle):
		return "cross-cycle"
	case errors.Is(err, ErrMisroute):
		return "misroute"
	case errors.Is(err, ErrOverload):
		return "overload"
	case errors.Is(err, ErrProtocol):
		return "protocol"
	case errors.Is(err, ErrClosed):
		return "closed"
	case errors.Is(err, ErrStragglerAborted):
		return "straggler-aborted"
	case errors.Is(err, ErrTxnAborted):
		return "txn-aborted"
	default:
		return "internal"
	}
}
