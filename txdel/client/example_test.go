package client_test

import (
	"context"
	"errors"
	"fmt"
	"log"

	"repro/txdel/client"
)

// Example_session opens a sharded DB, runs one read-modify-write session,
// and shows the typed-error contract: a nil Write means committed, and a
// failed operation is classified by errors.Is.
func Example_session() {
	db, err := client.Open(client.Config{Shards: 2, Policy: "greedy-c1"})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	txn, err := db.Begin(ctx, client.WithFootprint(0))
	if err != nil {
		log.Fatal(err)
	}
	if err := txn.Read(ctx, 0); err != nil {
		log.Fatal(err)
	}
	if err := txn.Write(ctx, 0); err == nil {
		fmt.Println("committed T", txn.ID())
	}

	// A dead session answers every operation with ErrTxnAborted.
	ghost, _ := db.Begin(ctx, client.WithFootprint(0))
	_ = ghost.Abort()
	err = ghost.Read(ctx, 0)
	fmt.Println("after abort:", errors.Is(err, client.ErrTxnAborted))
	// Output:
	// committed T 1
	// after abort: true
}

// Example_crossShard runs a transaction whose footprint spans two
// partitions: its reads apply immediately on their owning shards and the
// final Write commits through the cross-shard two-phase protocol (one
// PREPARE per participant, then COMMIT).
func Example_crossShard() {
	db, err := client.Open(client.Config{Shards: 4, Policy: "greedy-c1"})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	// Entities 0 and 1 live on different shards: a cross-partition session.
	txn, err := db.Begin(ctx, client.WithFootprint(0, 1))
	if err != nil {
		log.Fatal(err)
	}
	if err := txn.Read(ctx, 0); err != nil {
		log.Fatal(err)
	}
	if err := txn.Read(ctx, 1); err != nil {
		log.Fatal(err)
	}
	if err := txn.Write(ctx, 0, 1); err != nil {
		log.Fatal(err)
	}
	s := db.Stats()
	fmt.Println("cross transactions:", s.CrossTxns)
	fmt.Println("prepares:", s.Prepares)
	fmt.Println("barrier kills:", s.BarrierKills)
	// Output:
	// cross transactions: 1
	// prepares: 2
	// barrier kills: 0
}
