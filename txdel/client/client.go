// Package client is the public session API over the sharded deletion
// engine: context-aware transactions, a typed error taxonomy, and
// first-class admission control.
//
// Where package txdel exposes the paper's single-node schedulers and
// deletion conditions directly, client is how a program talks to the
// concurrent engine — N single-writer shards over hash-partitioned
// entities, per-shard deletion policies with amortized GC, and cross-shard
// transactions committing through a two-phase protocol guarded by the
// cross-arc registry. Nothing outside this package needs to import the
// engine.
//
// # Sessions
//
//	db, err := client.Open(client.Config{Shards: 4, Policy: "greedy-c1"})
//	...
//	txn, err := db.Begin(ctx, client.WithFootprint(x, y))
//	if err != nil { ... }            // e.g. errors.Is(err, client.ErrOverload)
//	if err := txn.Read(ctx, x); err != nil { ... }
//	if err := txn.Write(ctx, y); err != nil { ... }  // nil == committed
//
// A transaction declares its entity footprint at Begin; the engine routes
// it to the owning shard, or — when the footprint spans partitions — runs
// it as one sub-transaction per participating shard, the final Write
// committing through the two-phase path. Context cancellation or deadline
// expiry at any point (including between PREPARE and the commit decision)
// aborts the transaction, releasing prepared pins and cross-arc registry
// entries on every shard.
//
// # Errors
//
// Every failure is classified by an errors.Is-able taxonomy — see
// ErrCycle and friends in this package. The step that kills a transaction
// carries the specific cause (ErrCycle, ErrCrossCycle, ErrMisroute); later
// operations on the dead session return ErrTxnAborted.
//
// # Admission control
//
// With Config.OverloadWatermark set, a Begin aimed at a shard whose
// submission backlog is over the watermark is shed with ErrOverload
// instead of queued — load sheds at the door rather than deep in a queue.
// WithPriority(PriorityHigh) exempts a session (e.g. an operator task)
// from shedding.
package client

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/emit"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/store"
	"repro/internal/trace"
)

// Core vocabulary, aliased so callers never import internal packages.
type (
	// Entity identifies a database item; entity x lives on shard
	// x mod Shards.
	Entity = model.Entity
	// TxnID identifies a transaction.
	TxnID = model.TxnID
	// Step is one raw scheduler input (the batch path's unit).
	Step = model.Step
	// Result reports the engine-level effect of one raw submission.
	// Result.Err is the source of truth; it wraps the taxonomy.
	Result = engine.Result
	// Stats is a point-in-time aggregate of engine counters.
	Stats = engine.Stats
	// Priority classifies a Begin for admission control.
	Priority = engine.Priority
	// StepSource is a stream of steps with abort feedback (satisfied by
	// txdel.Workload generators); see DB.Drive.
	StepSource = engine.StepSource
	// Store is a pluggable durability backend (see Config.Store).
	Store = store.Store
	// RecoveryReport summarizes what Open recovered from a durable store.
	RecoveryReport = engine.RecoveryReport
)

// Re-exported constants.
const (
	// NoTxn is the sentinel for "no transaction".
	NoTxn = model.NoTxn
	// PriorityNormal sessions are subject to the overload watermark.
	PriorityNormal = engine.PriorityNormal
	// PriorityHigh sessions bypass admission control.
	PriorityHigh = engine.PriorityHigh
)

// Config configures a DB.
type Config struct {
	// Shards is the number of entity partitions / scheduler goroutines
	// (default 1).
	Shards int
	// Policy names the per-shard deletion policy: "nogc" (default, never
	// delete), "lemma1", "greedy-c1", "greedy-c1-newest",
	// "noncurrent-safe", or "max-safe".
	Policy string
	// BatchSize caps how many queued steps a shard applies between GC
	// opportunities (default 64).
	BatchSize int
	// QueueDepth is the per-shard submission buffer (default 1024).
	QueueDepth int
	// SweepEveryCompletions is the GC cadence per shard (default 8).
	SweepEveryCompletions int
	// OverloadWatermark, if > 0, enables admission control: Begins aimed
	// at a shard with that much submission backlog are shed with
	// ErrOverload instead of queued. PriorityHigh sessions are exempt.
	OverloadWatermark int
	// RetentionWatermark, if > 0, enables the retention governor: when the
	// engine-wide retained completed count crosses it, the oldest live
	// straggler session is aborted (its next operation returns an error
	// matching both ErrStragglerAborted and ErrTxnAborted) so retention
	// falls back under the watermark. PriorityHigh sessions are exempt.
	// Requires a deletion policy other than "nogc".
	RetentionWatermark int
	// DataDir, when non-empty, enables crash durability on the file
	// backend: each shard journals its accepted subschedule to a
	// write-ahead log under this directory and checkpoints at sweep
	// boundaries, and Open recovers whatever a previous process left there
	// before serving (see DB.Recovery). The directory is created if
	// missing; its shard count must match Shards on reopen.
	DataDir string
	// FsyncBatch is the WAL sync cadence: the log is forced once this many
	// records accumulated (default 64). 1 is strict mode — every record
	// durable before its acknowledgement. 2PC PREPARE votes and COMMIT
	// decisions are always synced immediately regardless. Ignored without
	// DataDir or Store.
	FsyncBatch int
	// CheckpointEverySweeps is the checkpoint cadence in deletion-policy
	// sweeps (default 1). Ignored without DataDir or Store.
	CheckpointEverySweeps int
	// Store plugs a durability backend directly (e.g. store.NewMem in
	// tests); mutually exclusive with DataDir. The caller keeps ownership:
	// Close does not close it.
	Store Store

	// Verify keeps a full step trace; Close then replays the accepted
	// subschedule through the offline CSR referee and reports a non-nil
	// error if conflict serializability was ever violated.
	Verify bool
	// Trace keeps the step trace without the Close-time CSR check, so it
	// can be dumped for offline replay (DumpTrace). Implied by Verify.
	Trace bool

	// Sinks, when non-empty, attaches a telemetry bus: every engine
	// lifecycle event (begin/accept/veto/prepare/commit/abort/shed/sweep,
	// stamped with its shard) plus client-session events (Shard == -1,
	// commit/abort carrying wall-clock latency) is delivered to each sink
	// on one drain goroutine. A *emit.MetricsSink in the list is wired to
	// the engine's gauges and the bus's drop counters automatically. The
	// DB owns the bus: Close drains and closes the sinks.
	Sinks []emit.Sink
	// EventBuffer is the bus ring capacity (rounded up to a power of two;
	// default emit.DefaultBuffer). When sinks fall behind, events beyond
	// the buffer are dropped and counted — the hot path never blocks.
	EventBuffer int

	// enginePolicy, when non-nil, overrides Policy with a custom factory —
	// a seam for this package's tests.
	enginePolicy func() core.Policy
}

func policyFactory(name string) (func() core.Policy, error) {
	switch name {
	case "", "nogc", "none":
		return nil, nil
	case "lemma1":
		return func() core.Policy { return core.Lemma1Policy{} }, nil
	case "greedy-c1":
		return func() core.Policy { return core.GreedyC1{} }, nil
	case "greedy-c1-newest":
		return func() core.Policy { return core.GreedyC1{NewestFirst: true} }, nil
	case "noncurrent-safe":
		return func() core.Policy { return core.NoncurrentSafe{} }, nil
	case "max-safe":
		return func() core.Policy { return core.MaxSafeExact{} }, nil
	default:
		return nil, fmt.Errorf("client: unknown policy %q (nogc, lemma1, greedy-c1, greedy-c1-newest, noncurrent-safe, max-safe): %w", name, ErrProtocol)
	}
}

// DB is an open handle on the sharded engine. All methods are safe for
// concurrent use; each Txn, however, is a single client session and must
// be driven from one goroutine at a time.
type DB struct {
	eng    *engine.Engine
	log    *trace.SafeLog
	bus    *emit.Bus
	verify bool
	nextID atomic.Int64
	closed atomic.Bool
	// ownedStore is the file backend Open created from Config.DataDir (nil
	// when the caller supplied Config.Store or durability is off); Close
	// closes it after the engine's final sync.
	ownedStore *store.File
	recovery   *RecoveryReport
}

// Open starts the engine with cfg's shard goroutines running.
func Open(cfg Config) (*DB, error) {
	factory := cfg.enginePolicy
	if factory == nil {
		f, err := policyFactory(cfg.Policy)
		if err != nil {
			return nil, err
		}
		factory = f
	}
	var log *trace.SafeLog
	if cfg.Verify || cfg.Trace {
		log = trace.NewSafeLog()
	}
	var bus *emit.Bus
	if len(cfg.Sinks) > 0 {
		bus = emit.NewBus(cfg.EventBuffer, cfg.Sinks...)
	}
	st := cfg.Store
	var owned *store.File
	if cfg.DataDir != "" {
		if st != nil {
			return nil, fmt.Errorf("client: Config.DataDir and Config.Store are mutually exclusive: %w", ErrProtocol)
		}
		shards := cfg.Shards
		if shards <= 0 {
			shards = 1
		}
		f, err := store.OpenFile(cfg.DataDir, shards, store.Options{})
		if err != nil {
			return nil, fmt.Errorf("client: open data dir: %w", err)
		}
		st, owned = f, f
	}
	eng, rep, err := engine.Open(engine.Config{
		Shards:                cfg.Shards,
		Policy:                factory,
		BatchSize:             cfg.BatchSize,
		QueueDepth:            cfg.QueueDepth,
		SweepEveryCompletions: cfg.SweepEveryCompletions,
		OverloadWatermark:     cfg.OverloadWatermark,
		RetentionWatermark:    cfg.RetentionWatermark,
		Log:                   log,
		Bus:                   bus,
		Store:                 st,
		WALSyncEvery:          cfg.FsyncBatch,
		CheckpointEverySweeps: cfg.CheckpointEverySweeps,
	})
	if err != nil {
		if owned != nil {
			owned.Close()
		}
		if bus != nil {
			bus.Close()
		}
		return nil, err
	}
	for _, s := range cfg.Sinks {
		if m, ok := s.(*emit.MetricsSink); ok {
			m.SetGauges(eng.Gauges)
			m.SetBus(bus)
		}
	}
	return &DB{eng: eng, log: log, bus: bus, verify: cfg.Verify, ownedStore: owned, recovery: rep}, nil
}

// Recovery reports what Open recovered from the durability layer (an empty
// report when durability is off).
func (db *DB) Recovery() *RecoveryReport { return db.recovery }

// ResolveInDoubt decides a cross-partition transaction recovery held in
// doubt; see the engine documentation. Only meaningful after an Open whose
// Recovery().InDoubt was non-empty.
func (db *DB) ResolveInDoubt(id TxnID, commit bool) bool {
	return db.eng.ResolveInDoubt(id, commit)
}

// NumShards returns the number of entity partitions.
func (db *DB) NumShards() int { return db.eng.NumShards() }

// Stats returns a snapshot of the engine counters. Safe to call
// concurrently with sessions and after Close.
func (db *DB) Stats() Stats { return db.eng.Stats() }

// QueueDepths returns the instantaneous per-shard submission backlog — the
// gauge admission control sheds on — without a shard round-trip.
func (db *DB) QueueDepths() []int64 { return db.eng.QueueDepths() }

// SubmitBatch is the raw step path under the session API: it submits a
// client's steps in order (consecutive same-shard steps pipelined through
// one shard round-trip) and returns one Result per step. Sessions and
// batches may be mixed on one DB, but one transaction's steps must all
// come from one or the other. Batch steps run at PriorityNormal with no
// deadline.
func (db *DB) SubmitBatch(steps []Step) []Result { return db.eng.SubmitBatch(steps) }

// Abort aborts a live transaction by ID, whatever state it is in —
// releasing, for a cross-partition transaction, the sub-transactions and
// prepared pins on every participant. It reports false if the transaction
// is unknown or already decided. Sessions normally use Txn.Abort; this is
// the raw-path equivalent (e.g. a wire server cleaning up after a
// disconnected client).
func (db *DB) Abort(id TxnID) bool { return db.eng.Abort(id) }

// Drive pumps a step source (e.g. a txdel.Workload generator) into the
// engine through the batched submission path, batchSize steps per shard
// round-trip, reacting to rejections the way a per-step session would. It
// returns the number of steps submitted.
func (db *DB) Drive(src StepSource, batchSize int) int { return db.eng.Drive(src, batchSize) }

// Bus returns the telemetry bus attached via Config.Sinks (nil without
// sinks) — for reading the emitted/dropped counters.
func (db *DB) Bus() *emit.Bus { return db.bus }

// DumpTrace writes the step trace as JSON lines ({"rec":"step",...}, one
// per recorded event, in apply order) — the schedule half of a capture
// file; see docs/observability.md for the format. It requires Config.Trace
// or Config.Verify and may be called while sessions run (it snapshots) or
// after Close.
func (db *DB) DumpTrace(w io.Writer) error {
	if db.log == nil {
		return fmt.Errorf("client: DumpTrace without Config.Trace or Config.Verify: %w", ErrProtocol)
	}
	var buf []byte
	for _, ev := range db.log.Snapshot().Events() {
		buf = buf[:0]
		buf = append(buf, `{"rec":"step","seq":`...)
		buf = strconv.AppendInt(buf, ev.Seq, 10)
		buf = append(buf, `,"txn":`...)
		buf = strconv.AppendInt(buf, int64(ev.Step.Txn), 10)
		if ev.AbortMark {
			buf = append(buf, `,"kind":"abort-mark"}`...)
			buf = append(buf, '\n')
		} else {
			buf = append(buf, `,"kind":"`...)
			switch ev.Step.Kind {
			case model.KindBegin:
				buf = append(buf, `begin"`...)
			case model.KindRead:
				buf = append(buf, `read","entity":`...)
				buf = strconv.AppendInt(buf, int64(ev.Step.Entity), 10)
			default:
				buf = append(buf, `write","entities":[`...)
				for i, x := range ev.Step.Entities {
					if i > 0 {
						buf = append(buf, ',')
					}
					buf = strconv.AppendInt(buf, int64(x), 10)
				}
				buf = append(buf, ']')
			}
			if ev.Step.Kind == model.KindBegin && len(ev.Step.Entities) > 0 {
				buf = append(buf, `,"footprint":[`...)
				for i, x := range ev.Step.Entities {
					if i > 0 {
						buf = append(buf, ',')
					}
					buf = strconv.AppendInt(buf, int64(x), 10)
				}
				buf = append(buf, ']')
			}
			buf = append(buf, `,"accepted":`...)
			buf = strconv.AppendBool(buf, ev.Accepted)
			buf = append(buf, "}\n"...)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// Close stops the engine, then drains and closes the telemetry bus (so the
// tail of the event stream reaches every sink). With Config.Verify it then
// replays the accepted subschedule through the offline CSR referee and
// returns its verdict (nil means the full run was conflict serializable).
// Close is idempotent; later calls return nil.
func (db *DB) Close() error {
	if !db.closed.CompareAndSwap(false, true) {
		return nil
	}
	db.eng.Close()
	var busErr error
	if db.ownedStore != nil {
		// After the engine's final sync; a graceful Close leaves a clean,
		// fully-durable directory behind.
		busErr = db.ownedStore.Close()
	}
	if db.bus != nil {
		if err := db.bus.Close(); err != nil && busErr == nil {
			busErr = err
		}
	}
	if db.verify {
		if err := db.log.CheckAcceptedCSR(); err != nil {
			return err
		}
	}
	return busErr
}
