// Package txdel is the public API of the reproduction of Hadzilacos &
// Yannakakis, "Deleting Completed Transactions" (PODS '86; JCSS 38,
// 1989): conflict-graph transaction schedulers that can safely *forget*
// completed transactions.
//
// # Background
//
// A conflict-graph (serialization-graph) scheduler accepts a step only if
// it keeps the conflict graph acyclic. Unlike locking, it cannot discard
// a transaction at commit: a committed node may be needed to detect a
// future cycle. This package implements the paper's necessary-and-
// sufficient conditions for when a completed transaction CAN be removed,
// and deletion policies built on them:
//
//   - Condition C1 (Theorem 1) for a single transaction, repeatable on
//     reduced graphs (Theorem 3) — the GreedyC1 policy.
//   - Condition C2 (Theorem 4) for sets; finding the maximum deletable
//     set is NP-complete (Theorem 5) — the MaxSafeExact policy.
//   - Corollary 1's noncurrent rule, made compositional (NoncurrentSafe).
//   - Condition C3 for the multiple-write model (NP-complete to test,
//     Theorem 6) — see repro/internal/multiwrite via the Multiwrite
//     helpers below.
//   - Condition C4 for predeclared transactions (Theorem 7) — see the
//     Predeclared helpers.
//
// # Quick start
//
//	s := txdel.NewScheduler(txdel.Config{Policy: txdel.GreedyC1{}})
//	s.Apply(txdel.Begin(1))
//	s.Apply(txdel.Read(1, 42))
//	s.Apply(txdel.WriteFinal(1, 42)) // completes T1
//
// Every Apply returns whether the step was accepted; a rejected step
// aborts its transaction (it would have created a cycle). The policy
// deletes completed transactions as soon as the paper's conditions allow,
// keeping the graph small; the behaviour is provably identical to never
// deleting anything (Theorem 2), which the repro/internal/oracle package
// verifies empirically.
package txdel

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/multiwrite"
	"repro/internal/predeclared"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Core vocabulary (aliases into the implementation packages).
type (
	// Entity identifies a database item.
	Entity = model.Entity
	// TxnID identifies a transaction.
	TxnID = model.TxnID
	// Access is an access strength (read < write).
	Access = model.Access
	// Status is a transaction lifecycle state.
	Status = model.Status
	// Step is one scheduler input.
	Step = model.Step
	// AccessSet records a transaction's strongest access per entity.
	AccessSet = model.AccessSet
	// NodeSet is a set of transaction IDs.
	NodeSet = graph.NodeSet
	// Graph is the conflict graph engine.
	Graph = graph.Graph
)

// Re-exported constants.
const (
	NoTxn       = model.NoTxn
	ReadAccess  = model.ReadAccess
	WriteAccess = model.WriteAccess

	StatusActive    = model.StatusActive
	StatusCompleted = model.StatusCompleted
	StatusFinished  = model.StatusFinished
	StatusCommitted = model.StatusCommitted
	StatusAborted   = model.StatusAborted
)

// Step constructors.
var (
	// Begin starts a transaction.
	Begin = model.Begin
	// BeginDeclared starts a transaction carrying its declared entity
	// footprint; sharded engines (see repro/txdel/client) route on it.
	BeginDeclared = model.BeginDeclared
	// Read reads one entity.
	Read = model.Read
	// WriteFinal is the basic model's final atomic write (completes the
	// transaction; an empty write set makes it read-only).
	WriteFinal = model.WriteFinal
	// Write is a multiple-write-model single write.
	Write = model.Write
	// Finish marks a multiple-write transaction finished.
	Finish = model.Finish
)

// Basic-model scheduler (paper Sections 2–4).
type (
	// Scheduler is the preventive conflict-graph scheduler.
	Scheduler = core.Scheduler
	// Certifier is the optimistic (certification) variant.
	Certifier = core.Certifier
	// Config configures a Scheduler.
	Config = core.Config
	// Result reports a step's outcome.
	Result = core.Result
	// Stats are scheduler counters.
	Stats = core.Stats
	// Policy decides which completed transactions to delete.
	Policy = core.Policy
	// Sweep is the handle a Policy mutates through.
	Sweep = core.Sweep

	// NoGC never deletes.
	NoGC = core.NoGC
	// Lemma1Policy deletes nodes with no active predecessors.
	Lemma1Policy = core.Lemma1Policy
	// GreedyC1 repeatedly deletes any node satisfying condition C1.
	GreedyC1 = core.GreedyC1
	// MaxSafeExact deletes a maximum safe set (branch-and-bound over C2).
	MaxSafeExact = core.MaxSafeExact
	// NoncurrentSafe is Corollary 1's rule with a presence guard.
	NoncurrentSafe = core.NoncurrentSafe
	// NoncurrentNaive is Corollary 1 verbatim (safe standalone only).
	NoncurrentNaive = core.NoncurrentNaive
	// CommitGC deletes at commit — UNSAFE under conflict scheduling;
	// provided as a negative control.
	CommitGC = core.CommitGC
	// Chain composes policies in order.
	Chain = core.Chain

	// C1Violation witnesses a C1 failure.
	C1Violation = core.C1Violation
	// C2Violation witnesses a C2 failure.
	C2Violation = core.C2Violation
)

// NewScheduler returns a basic-model scheduler.
func NewScheduler(cfg Config) *Scheduler { return core.NewScheduler(cfg) }

// NewCertifier returns the certification-variant scheduler.
func NewCertifier() *Certifier { return core.NewCertifier() }

// CheckC1 evaluates Theorem 1's condition C1 for a transaction on the
// scheduler's current (possibly reduced) graph.
func CheckC1(s *Scheduler, id TxnID) (bool, *C1Violation) { return s.CheckC1(id) }

// CheckC2 evaluates Theorem 4's condition C2 for a set.
func CheckC2(s *Scheduler, set NodeSet) (bool, *C2Violation) { return s.CheckC2(set) }

// MaxSafeSet computes a maximum-size safely deletable subset of the
// completed transactions (Theorem 5's NP-complete problem; exact
// branch-and-bound with the given node budget, 0 = default).
func MaxSafeSet(s *Scheduler, budget int) NodeSet {
	return core.MaxSafeSet(s, s.Graph(), s.CompletedTxns(), budget)
}

// Multiple-write model (paper Section 5).
type (
	// MWScheduler is the multiple-write-model scheduler (A/F/C states,
	// dirty reads, cascading aborts).
	MWScheduler = multiwrite.Scheduler
	// MWResult reports a multiwrite step's outcome.
	MWResult = multiwrite.Result
	// C3Violation witnesses a C3 failure.
	C3Violation = multiwrite.C3Violation
)

// NewMWScheduler returns a multiple-write-model scheduler.
func NewMWScheduler() *MWScheduler { return multiwrite.NewScheduler() }

// Predeclared model (paper Section 5).
type (
	// PDScheduler is the predeclared-transactions scheduler (delays
	// instead of aborting).
	PDScheduler = predeclared.Scheduler
	// Decl is a transaction's declared read/write sets.
	Decl = predeclared.Decl
	// PDConfig configures a PDScheduler.
	PDConfig = predeclared.Config
	// PDResult reports a predeclared step's outcome.
	PDResult = predeclared.Result
	// PDOutcome is a predeclared step outcome (Executed or Blocked).
	PDOutcome = predeclared.Outcome
	// C4Violation witnesses a C4 failure.
	C4Violation = predeclared.C4Violation
)

// Predeclared outcomes.
const (
	// Executed means the predeclared step ran.
	Executed = predeclared.Executed
	// Blocked means it was delayed behind a future conflicting step.
	Blocked = predeclared.Blocked
)

// NewPDScheduler returns a predeclared scheduler; with GC enabled it
// greedily deletes completed transactions satisfying condition C4.
func NewPDScheduler(cfg PDConfig) *PDScheduler { return predeclared.NewScheduler(cfg) }

// Offline checking and workloads.
type (
	// Log records submitted steps for offline CSR checking.
	Log = trace.Log
	// WorkloadConfig parameterizes the synthetic workload generator.
	WorkloadConfig = workload.Config
	// Workload generates basic-model step streams.
	Workload = workload.Gen
)

// NewLog returns an empty schedule log.
func NewLog() *Log { return trace.NewLog() }

// IsCSR reports whether a schedule is conflict serializable, computed
// from scratch (independent of any scheduler state).
func IsCSR(steps []Step) bool { return trace.IsCSR(steps) }

// NewWorkload returns a deterministic synthetic workload generator.
func NewWorkload(cfg WorkloadConfig) *Workload { return workload.New(cfg) }
