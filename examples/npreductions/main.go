// NP reductions end to end: Theorem 5 (Set Cover) and Theorem 6 (3-SAT),
// each realized as an actual schedule through the real schedulers and
// cross-checked against an independent solver.
//
// Run with: go run ./examples/npreductions
package main

import (
	"fmt"

	"repro/internal/reduction"
	"repro/internal/sat"
	"repro/internal/setcover"
)

func main() {
	theorem5()
	fmt.Println()
	theorem6()
}

func theorem5() {
	fmt.Println("== Theorem 5: max safe deletion set == set cover ==")
	// A concrete instance: X = {0,1,2,3}, F = {{0,1,2}, {0,1}, {2,3}, {3}}.
	in := &setcover.Instance{N: 4, Sets: [][]int{{0, 1, 2}, {0, 1}, {2, 3}, {3}}}
	gad, err := reduction.BuildSetCover(in)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  instance: %v over %d elements\n", in.Sets, in.N)
	fmt.Printf("  gadget schedule: %d steps, graph:\n", len(gad.Steps))
	for _, arc := range gad.Sched.Graph().Arcs() {
		fmt.Printf("    T%d -> T%d\n", arc.From, arc.To)
	}
	mc := setcover.MinCover(in)
	fmt.Printf("  minimum cover: sets %v (size %d)\n", mc, len(mc))
	fmt.Printf("  C1 candidates after the last step: %v\n", gad.DeletableNow())
	fmt.Printf("  maximum safely deletable: %d (predicted m - minCover = %d)\n",
		gad.MaxDeletable(0), len(in.Sets)-len(mc))
}

func theorem6() {
	fmt.Println("== Theorem 6: committed C deletable iff formula UNSAT ==")
	formulas := []*sat.Formula{
		{NumVars: 3, Clauses: []sat.Clause{{1, 2, 3}}}, // satisfiable
		{NumVars: 3, Clauses: []sat.Clause{ // all 8 sign patterns: UNSAT
			{1, 2, 3}, {1, 2, -3}, {1, -2, 3}, {1, -2, -3},
			{-1, 2, 3}, {-1, 2, -3}, {-1, -2, 3}, {-1, -2, -3},
		}},
	}
	for _, f := range formulas {
		_, satisfiable := sat.Solve(f)
		gad, err := reduction.BuildThreeSAT(f)
		if err != nil {
			panic(err)
		}
		deletable, viol, err := gad.CDeletable()
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %v\n", f)
		fmt.Printf("    gadget: %d transactions (%d active), %d steps\n",
			gad.Sched.Graph().NumNodes(), len(gad.Sched.Active()), len(gad.Steps))
		fmt.Printf("    DPLL: satisfiable=%v;  C3: C deletable=%v\n", satisfiable, deletable)
		if viol != nil {
			a := gad.AssignmentFromViolation(viol)
			fmt.Printf("    violating abort set M=%v decodes to model %v (check: %v)\n",
				viol.M, a, f.Satisfies(a))
		}
	}
}
