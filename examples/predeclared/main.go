// Predeclared scheduling: the paper's Example 2 (Fig. 4) and the C4
// condition, live. With predeclared read/write sets the scheduler delays
// steps instead of aborting transactions, and condition C4's second
// clause lets it forget transaction C even though C has an active
// predecessor — because A's only remaining step is a read of y that B has
// already read, A can never acquire a new predecessor "behind" C.
//
// Run with: go run ./examples/predeclared
package main

import (
	"fmt"

	"repro/txdel"
)

func main() {
	s := txdel.NewPDScheduler(txdel.PDConfig{})

	const (
		u = txdel.Entity(0)
		z = txdel.Entity(1)
		y = txdel.Entity(2)
		x = txdel.Entity(3)
	)
	const (
		A = txdel.TxnID(1)
		B = txdel.TxnID(2)
		C = txdel.TxnID(3)
		D = txdel.TxnID(4)
	)

	must := func(res txdel.PDResult, err error) txdel.PDResult {
		if err != nil {
			panic(err)
		}
		return res
	}

	fmt.Println("Example 2 (Fig. 4):")
	must(s.Begin(A, txdel.Decl{Reads: []txdel.Entity{u, z, y}}))
	must(s.Read(A, u))
	must(s.Read(A, z))
	must(s.Begin(B, txdel.Decl{Reads: []txdel.Entity{y}, Writes: []txdel.Entity{u}}))
	must(s.Read(B, y))
	must(s.Write(B, u))
	must(s.Begin(C, txdel.Decl{Writes: []txdel.Entity{x, z}}))
	must(s.Write(C, x))
	must(s.Write(C, z))
	fmt.Println("  graph after p:")
	fmt.Print(indent(s.Graph().String()))

	for _, id := range []txdel.TxnID{B, C} {
		ok, viol := s.CheckC4(id)
		if ok {
			fmt.Printf("  C4(T%d): deletable\n", id)
		} else {
			fmt.Printf("  C4(T%d): kept — %v\n", id, viol)
		}
	}
	if !s.DeleteIfSafe(C) {
		panic("C should be deletable")
	}
	fmt.Println("  deleted C; B retained (its witness would be needed for u)")

	// Demonstrate WHY B must stay: a new transaction D that declares a
	// write of y is held back by the arc B→D the moment it begins; if B
	// had been forgotten, D's write would sneak in before A's read.
	fmt.Println()
	fmt.Println("The clause-2 mechanism, live:")
	must(s.Begin(D, txdel.Decl{Writes: []txdel.Entity{y}}))
	res := must(s.Write(D, y))
	if res.Outcome == txdel.Blocked {
		fmt.Println("  D's write of y is DELAYED (B, still in the graph, precedes it;")
		fmt.Println("  executing it before A's read would create an invisible cycle)")
	} else {
		fmt.Println("  D's write executed — B must have been deleted (unsafe!)")
	}
	res = must(s.Read(A, y))
	fmt.Printf("  A reads y: outcome=%v, unblocked=%v\n", outcomeName(res.Outcome), res.Unblocked)
	fmt.Printf("  final statuses: A=%v B=%v D=%v\n", s.Status(A), s.Status(B), s.Status(D))
}

func outcomeName(o txdel.PDOutcome) string {
	if o == txdel.Blocked {
		return "blocked"
	}
	return "executed"
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += "    " + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}
