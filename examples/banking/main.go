// Banking: the motivating scenario from the paper's introduction, on a
// realistic workload. Short transfer transactions read and update account
// balances while one long-running AUDIT transaction scans every account.
// Under a conflict-graph scheduler the audit is an active (tight)
// predecessor of everything that touches audited accounts, so without
// deletion the graph grows for the audit's whole lifetime. Condition C1
// still lets most completed transfers be forgotten: each overwritten
// balance has a later writer to serve as the witness.
//
// Run with: go run ./examples/banking
package main

import (
	"fmt"
	"math/rand"

	"repro/txdel"
)

const (
	accounts  = 128
	transfers = 400
)

func main() {
	fmt.Println("scenario: one audit scanning all accounts + short transfers")
	fmt.Printf("%-16s %12s %12s %12s %12s\n", "policy", "peak kept", "avg kept", "deleted", "aborts")
	for _, policy := range []txdel.Policy{
		txdel.NoGC{},
		txdel.Lemma1Policy{},
		txdel.NoncurrentSafe{},
		txdel.GreedyC1{},
	} {
		st, auditOK := run(policy)
		fmt.Printf("%-16s %12d %12.1f %12d %12d   audit committed: %v\n",
			policy.Name(), st.PeakKept, st.AvgKept(), st.Deleted, st.Aborts, auditOK)
	}
	fmt.Println()
	fmt.Println("every transfer updates an audited account, so it has the audit as an")
	fmt.Println("active predecessor for the audit's whole lifetime: Lemma 1 retains")
	fmt.Println("essentially the entire history (like NoGC) until the audit commits.")
	fmt.Println("Condition C1 forgets a transfer as soon as later transfers overwrite")
	fmt.Println("the balances it touched — witnesses the corollary's noncurrent rule")
	fmt.Println("also exploits, which is why noncurrent-safe sits in between.")
}

func run(policy txdel.Policy) (txdel.Stats, bool) {
	rng := rand.New(rand.NewSource(42))
	s := txdel.NewScheduler(txdel.Config{Policy: policy})

	const audit = txdel.TxnID(0)
	s.MustApply(txdel.Begin(audit))
	auditAlive := true
	nextAudit := 0 // next account the audit will read

	nextID := txdel.TxnID(1)
	type transfer struct {
		id       txdel.TxnID
		from, to txdel.Entity
		stage    int
	}
	var live []*transfer

	for done := 0; done < transfers || len(live) > 0; {
		// Interleave the audit's scan: one account read every few steps.
		if auditAlive && nextAudit < accounts && rng.Intn(4) == 0 {
			res := s.MustApply(txdel.Read(audit, txdel.Entity(nextAudit)))
			if !res.Accepted {
				auditAlive = false // the audit itself aborted (rare)
			}
			nextAudit++
			continue
		}
		// Start a transfer if below the concurrency limit. Transfers touch
		// only already-audited accounts (the audit scans in account order,
		// the OLTP traffic trails behind it) — so the audit never reads a
		// stale balance and survives to commit, while every transfer gains
		// the audit as an active predecessor: the paper's worst case for
		// graph retention.
		if done < transfers && len(live) < 3 && nextAudit > 0 && rng.Intn(2) == 0 {
			tr := &transfer{
				id:   nextID,
				from: txdel.Entity(rng.Intn(nextAudit)),
				to:   txdel.Entity(rng.Intn(nextAudit)),
			}
			nextID++
			done++
			s.MustApply(txdel.Begin(tr.id))
			live = append(live, tr)
			continue
		}
		if len(live) == 0 {
			continue
		}
		// Advance a random live transfer: read from, read to, write both.
		i := rng.Intn(len(live))
		tr := live[i]
		var res txdel.Result
		switch tr.stage {
		case 0:
			res = s.MustApply(txdel.Read(tr.id, tr.from))
		case 1:
			res = s.MustApply(txdel.Read(tr.id, tr.to))
		default:
			res = s.MustApply(txdel.WriteFinal(tr.id, tr.from, tr.to))
		}
		tr.stage++
		if !res.Accepted || tr.stage > 2 {
			live = append(live[:i], live[i+1:]...)
		}
	}
	// Finish the audit: read-only commit.
	for auditAlive && nextAudit < accounts {
		if res := s.MustApply(txdel.Read(audit, txdel.Entity(nextAudit))); !res.Accepted {
			auditAlive = false
			break
		}
		nextAudit++
	}
	if auditAlive && s.Txn(audit) != nil {
		if res := s.MustApply(txdel.WriteFinal(audit)); !res.Accepted { // read-only commit
			auditAlive = false
		}
	}
	return s.Stats(), auditAlive
}
