// Banking: the motivating scenario from the paper's introduction, on the
// sharded engine through the txdel/client session API. Accounts are
// hash-partitioned over 4 shards. One long-running AUDIT session scans
// shard 0's accounts in order while short transfer sessions run two kinds
// of traffic: transfers among already-audited shard-0 balances (the
// paper's worst case — every one keeps the audit as an active
// predecessor), and cross-shard transfers among shards 1–3 that commit
// through the two-phase protocol. Under Lemma 1 the audited shard retains
// essentially its whole history until the audit commits; condition C1
// forgets a transfer as soon as later transfers overwrite the balances it
// touched, which is why greedy-c1 keeps the graph small even mid-audit.
//
// (A cross-partition audit is possible too — WithShards(0,1,2,3) — but a
// long-lived cross transaction gates deletion of everything its
// cross-ancestor labels reach, so a production audit scans shard by
// shard; see the package docs of repro/internal/core on label gating.)
//
// Run with: go run ./examples/banking
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"

	"repro/txdel/client"
)

const (
	shards    = 4
	accounts  = 128 // total accounts; shard-0 account k is entity shards*k
	transfers = 400
)

func main() {
	fmt.Println("scenario: an audit scanning shard 0 + local and cross-shard transfers")
	fmt.Printf("%-16s %12s %12s %12s %12s %8s\n", "policy", "peak kept", "avg kept", "deleted", "aborts", "cross")
	for _, policy := range []string{"nogc", "lemma1", "noncurrent-safe", "greedy-c1"} {
		st, auditOK := run(policy)
		fmt.Printf("%-16s %12d %12.1f %12d %12d %8d   audit committed: %v\n",
			policy, st.Merged.PeakKept, st.Merged.AvgKept(), st.Deleted, st.Aborted, st.CrossTxns, auditOK)
	}
	fmt.Println()
	fmt.Println("every shard-0 transfer keeps the audit as an active predecessor until")
	fmt.Println("the audit commits, so Lemma 1 retains that shard's history like NoGC.")
	fmt.Println("Condition C1 forgets a transfer once later transfers overwrite the")
	fmt.Println("balances it touched. Cross-shard transfers (shards 1-3) commit through")
	fmt.Println("the 2PC path, retire from the cross-arc registry, and are reclaimed too.")
}

type transfer struct {
	txn      *client.Txn
	from, to client.Entity
	stage    int
}

// auditedAccount returns shard-0 account k (entity 4k).
func auditedAccount(k int) client.Entity { return client.Entity(shards * k) }

func run(policy string) (client.Stats, bool) {
	db, err := client.Open(client.Config{
		Shards:                shards,
		Policy:                policy,
		SweepEveryCompletions: 4,
		Verify:                true,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))

	// The audit roams all of shard 0 without a declared entity set.
	audit, err := db.Begin(ctx, client.WithShards(0))
	if err != nil {
		log.Fatal(err)
	}
	auditAlive := true
	nextAudit := 0 // next shard-0 account the audit will read
	perShard := accounts / shards

	beginTransfer := func() *transfer {
		var from, to client.Entity
		if rng.Intn(3) == 0 {
			// Cross-shard transfer between two of shards 1-3.
			a := 1 + rng.Intn(shards-1)
			b := 1 + rng.Intn(shards-1)
			for b == a {
				b = 1 + rng.Intn(shards-1)
			}
			from = client.Entity(a + shards*rng.Intn(perShard))
			to = client.Entity(b + shards*rng.Intn(perShard))
		} else {
			// Shard-0 transfer among already-audited accounts (the OLTP
			// traffic trails the scan, so the audit never reads a stale
			// balance and survives to commit).
			from = auditedAccount(rng.Intn(nextAudit))
			to = auditedAccount(rng.Intn(nextAudit))
		}
		txn, err := db.Begin(ctx, client.WithFootprint(from, to))
		if err != nil {
			if errors.Is(err, client.ErrProtocol) {
				log.Fatal(err)
			}
			return nil
		}
		return &transfer{txn: txn, from: from, to: to}
	}

	var live []*transfer
	for done := 0; done < transfers || len(live) > 0; {
		// Interleave the audit's scan: one account read every few steps.
		if auditAlive && nextAudit < perShard && rng.Intn(4) == 0 {
			if err := audit.Read(ctx, auditedAccount(nextAudit)); err != nil {
				auditAlive = false // the audit itself aborted (rare)
			}
			nextAudit++
			continue
		}
		if done < transfers && len(live) < 3 && nextAudit > 0 && rng.Intn(2) == 0 {
			done++
			if tr := beginTransfer(); tr != nil {
				live = append(live, tr)
			}
			continue
		}
		if len(live) == 0 {
			continue
		}
		// Advance a random live transfer: read from, read to, write both.
		i := rng.Intn(len(live))
		tr := live[i]
		switch tr.stage {
		case 0:
			err = tr.txn.Read(ctx, tr.from)
		case 1:
			err = tr.txn.Read(ctx, tr.to)
		default:
			err = tr.txn.Write(ctx, tr.from, tr.to)
		}
		tr.stage++
		if err != nil || tr.stage > 2 {
			live = append(live[:i], live[i+1:]...)
		}
	}
	// Finish the audit: scan the rest, then a read-only commit.
	for auditAlive && nextAudit < perShard {
		if err := audit.Read(ctx, auditedAccount(nextAudit)); err != nil {
			auditAlive = false
			break
		}
		nextAudit++
	}
	if auditAlive {
		if err := audit.Write(ctx); err != nil { // empty write set: read-only
			auditAlive = false
		}
	}
	stats := db.Stats()
	if err := db.Close(); err != nil {
		log.Fatalf("policy %s: CSR verification failed: %v", policy, err)
	}
	return stats, auditAlive
}
