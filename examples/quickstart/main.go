// Quickstart: the paper's Example 1 through the public API.
//
// A long-running reader T1 holds entity x open while T2 and T3 serially
// read-modify-write x. Both completed transactions satisfy condition C1,
// but only one of them may be deleted — deleting one removes the other's
// witness. The GreedyC1 policy handles this automatically.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/txdel"
)

func main() {
	fmt.Println("== without deletion (the graph only grows) ==")
	run(txdel.NoGC{})
	fmt.Println()
	fmt.Println("== with GreedyC1 (Theorem 1 + Theorem 3) ==")
	run(txdel.GreedyC1{})
}

func run(policy txdel.Policy) {
	s := txdel.NewScheduler(txdel.Config{Policy: policy})

	const x = txdel.Entity(0)
	step := func(st txdel.Step) {
		res := s.MustApply(st)
		status := "accepted"
		if !res.Accepted {
			status = "REJECTED (txn aborted)"
		}
		extra := ""
		if len(res.Deleted) > 0 {
			extra = fmt.Sprintf("  -> policy deleted %v", res.Deleted)
		}
		fmt.Printf("  %-12s %-24s nodes=%d completed=%d%s\n",
			st.String(), status, s.Graph().NumNodes(), s.NumCompleted(), extra)
	}

	// T1: the long-running reader (still active at the end).
	step(txdel.Begin(1))
	step(txdel.Read(1, x))
	// T2 and T3: serial read-modify-writes of x.
	for id := txdel.TxnID(2); id <= 3; id++ {
		step(txdel.Begin(id))
		step(txdel.Read(id, x))
		step(txdel.WriteFinal(id, x))
	}

	// Inspect the deletion conditions directly.
	for _, id := range s.CompletedTxns() {
		ok, viol := txdel.CheckC1(s, id)
		if ok {
			fmt.Printf("  C1(T%d): deletable\n", id)
		} else {
			fmt.Printf("  C1(T%d): kept — %v\n", id, viol)
		}
	}
	if ok, _ := txdel.CheckC2(s, txdel.NodeSet{2: {}, 3: {}}); !ok && s.NumCompleted() == 2 {
		fmt.Println("  C2({T2,T3}): cannot delete both simultaneously (the paper's Example 1)")
	}
}
