// Quickstart: the paper's Example 1 driven through the public
// txdel/client session API over the sharded engine.
//
// A long-running reader T1 holds entity x open while two sessions serially
// read-modify-write x. Without deletion the conflict graph only grows;
// with the GreedyC1 policy the engine forgets completed transactions as
// soon as Theorem 1's condition C1 allows. The example then shows the
// typed-error contract: a cycle-closing write fails with ErrCycle, a stray
// access with ErrMisroute, and operations on the dead session with
// ErrTxnAborted — all matched with errors.Is, never string parsing.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"repro/txdel/client"
)

func main() {
	for _, policy := range []string{"nogc", "greedy-c1"} {
		fmt.Printf("== policy %s ==\n", policy)
		run(policy)
		fmt.Println()
	}
	errorTaxonomy()
}

func run(policy string) {
	db, err := client.Open(client.Config{
		Shards:                1,
		Policy:                policy,
		SweepEveryCompletions: 1,
		Verify:                true,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	const x = client.Entity(0)

	// T1: the long-running reader (still active while others commit).
	reader, err := db.Begin(ctx, client.WithFootprint(x))
	if err != nil {
		log.Fatal(err)
	}
	if err := reader.Read(ctx, x); err != nil {
		log.Fatal(err)
	}
	// Two serial read-modify-writes of x.
	for i := 0; i < 2; i++ {
		txn, err := db.Begin(ctx, client.WithFootprint(x))
		if err != nil {
			log.Fatal(err)
		}
		if err := txn.Read(ctx, x); err != nil {
			log.Fatal(err)
		}
		if err := txn.Write(ctx, x); err != nil {
			log.Fatal(err)
		}
		s := db.Stats()
		fmt.Printf("  T%d committed; retained completed now %d (deleted so far: %d)\n",
			txn.ID(), s.Merged.Completed-s.Deleted, s.Deleted)
	}
	if err := reader.Write(ctx); err != nil { // read-only commit
		log.Fatal(err)
	}
	s := db.Stats()
	fmt.Printf("  peak retained completed: %d, deleted by GC: %d\n", s.Merged.PeakKept, s.Deleted)
	if err := db.Close(); err != nil {
		log.Fatalf("CSR verification failed: %v", err)
	}
	fmt.Println("  verify OK: accepted schedule is conflict serializable")
}

func errorTaxonomy() {
	fmt.Println("== typed errors ==")
	db, err := client.Open(client.Config{Shards: 2, Policy: "greedy-c1"})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	// Two transactions racing on entities 0 and 2 (both shard 0): the
	// second final write would close a cycle and is rejected.
	a, _ := db.Begin(ctx, client.WithFootprint(0, 2))
	b, _ := db.Begin(ctx, client.WithFootprint(0, 2))
	_ = a.Read(ctx, 0)
	_ = b.Read(ctx, 2)
	_ = b.Write(ctx, 0)
	err = a.Write(ctx, 2)
	fmt.Printf("  cycle-closing write: errors.Is(err, ErrCycle) = %v\n", errors.Is(err, client.ErrCycle))
	err = a.Read(ctx, 0)
	fmt.Printf("  read on dead session: errors.Is(err, ErrTxnAborted) = %v\n", errors.Is(err, client.ErrTxnAborted))

	// A session declared on shard 0 straying onto shard 1.
	m, _ := db.Begin(ctx, client.WithFootprint(0))
	err = m.Read(ctx, 1)
	fmt.Printf("  foreign access: errors.Is(err, ErrMisroute) = %v\n", errors.Is(err, client.ErrMisroute))
}
