// GC policies: compare every safe deletion policy (and the unsafe
// commit-time control) across workload shapes, with the lockstep oracle
// confirming behavioural equivalence on the fly — a compact version of
// experiments E7/E11.
//
// Run with: go run ./examples/gcpolicies
package main

import (
	"fmt"

	"repro/internal/oracle"
	"repro/internal/workload"
	"repro/txdel"
)

func main() {
	shapes := []struct {
		name string
		cfg  txdel.WorkloadConfig
	}{
		{"uniform", txdel.WorkloadConfig{Entities: 32, Txns: 300, MaxActive: 6, ReadsMin: 1, ReadsMax: 4, WritesMin: 1, WritesMax: 2, Seed: 11}},
		{"hotspot", txdel.WorkloadConfig{Entities: 64, Txns: 300, MaxActive: 6, ReadsMin: 1, ReadsMax: 4, WritesMin: 1, WritesMax: 2, HotFrac: 0.1, Seed: 12}},
		{"straggler", txdel.WorkloadConfig{Entities: 32, Txns: 300, MaxActive: 6, ReadsMin: 1, ReadsMax: 3, WritesMin: 1, WritesMax: 2, Straggler: 30, Seed: 13}},
	}
	policies := []txdel.Policy{
		txdel.NoGC{},
		txdel.Lemma1Policy{},
		txdel.NoncurrentSafe{},
		txdel.GreedyC1{},
		txdel.MaxSafeExact{Budget: 30000},
		txdel.CommitGC{}, // unsafe control: watch the oracle catch it
	}
	for _, sh := range shapes {
		fmt.Printf("== workload: %s ==\n", sh.name)
		fmt.Printf("%-18s %10s %10s %10s %14s\n", "policy", "peak kept", "avg kept", "deleted", "oracle verdict")
		for _, p := range policies {
			r := oracle.New(p)
			rep := r.RunGenerator(workload.New(sh.cfg), 0)
			verdict := "equivalent"
			if rep.Divergence != nil {
				verdict = fmt.Sprintf("DIVERGED@%d", rep.Divergence.StepIndex)
			} else if rep.CSRViolation != nil {
				verdict = "NON-CSR"
			}
			fmt.Printf("%-18s %10d %10.1f %10d %14s\n",
				p.Name(), rep.ReducedStats.PeakKept, rep.ReducedStats.AvgKept(),
				rep.ReducedStats.Deleted, verdict)
		}
		fmt.Println()
	}
	fmt.Println("every safe policy must read 'equivalent' (Theorem 2); the commit-time")
	fmt.Println("policy is the locking habit the paper warns about — the oracle catches it.")
}
