// Command txgc-lint runs the project-invariant analyzers over the module.
//
//	go run ./cmd/txgc-lint [flags] [packages]
//
// With no packages it loads ./... . Exit status: 0 clean, 1 diagnostics
// reported, 2 the load itself failed. See docs/lint.md for the analyzer
// catalog, the //txgc: annotation grammar, and the //lint:ignore
// suppression syntax.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	escape := flag.Bool("escape", false, "also run compiler escape analysis over hot packages and diff against -allowlist")
	allowlist := flag.String("allowlist", "lint/escape_allowlist.txt", "escape allowlist path (repo-relative)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	prog, err := lint.Load(lint.LoadConfig{}, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "txgc-lint:", err)
		os.Exit(2)
	}
	analyzers := []*lint.Analyzer{
		lint.NewLayering(lint.DefaultLayerRules(prog.Module)),
		lint.NewHotpath(),
		lint.NewShardowned(),
		lint.NewErrTaxonomy(),
		lint.NewEmitsafe(lint.DefaultEmitRoots(prog.Module)),
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "txgc-lint: unknown analyzer %q (see -list)\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}
	for _, e := range prog.Errors {
		fmt.Fprintln(os.Stderr, "txgc-lint:", e)
	}
	if len(prog.Errors) > 0 {
		os.Exit(2)
	}

	diags := lint.Run(prog, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if *escape {
		rep, err := lint.Escape(prog, *allowlist)
		if err != nil {
			fmt.Fprintln(os.Stderr, "txgc-lint:", err)
			os.Exit(2)
		}
		for _, d := range rep.Diags {
			fmt.Println(d)
		}
		for _, stale := range rep.Stale {
			fmt.Fprintf(os.Stderr, "txgc-lint: warning: stale allowlist entry (escape no longer happens): %s\n", stale)
		}
		diags = append(diags, rep.Diags...)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "txgc-lint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
