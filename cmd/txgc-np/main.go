// Command txgc-np is a playground for the paper's two NP-completeness
// reductions: it generates random instances, realizes the gadget
// schedules through the real schedulers, and cross-checks the paper's
// correspondences against independent solvers.
//
// Usage:
//
//	txgc-np -mode setcover -n 5 -m 6 -trials 5    # Theorem 5
//	txgc-np -mode 3sat -m 8 -trials 5             # Theorem 6 (n=3 vars)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/reduction"
	"repro/internal/sat"
	"repro/internal/setcover"
)

func main() {
	var (
		mode   = flag.String("mode", "setcover", "setcover (Theorem 5) or 3sat (Theorem 6)")
		n      = flag.Int("n", 4, "elements (setcover) / variables (3sat; capped by C3 cost)")
		m      = flag.Int("m", 5, "sets (setcover) / clauses (3sat)")
		trials = flag.Int("trials", 5, "instances to run")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	switch *mode {
	case "setcover":
		fmt.Printf("Theorem 5: Set Cover -> basic-model schedule; max deletable = m - minCover\n\n")
		for i := 0; i < *trials; i++ {
			in := setcover.Random(rng, *n, *m)
			gad, err := reduction.BuildSetCover(in)
			if err != nil {
				fmt.Fprintf(os.Stderr, "build: %v\n", err)
				os.Exit(1)
			}
			mc := setcover.MinCover(in)
			exact := gad.MaxDeletable(0)
			status := "OK"
			if exact != *m-len(mc) {
				status = "MISMATCH"
			}
			fmt.Printf("instance %d: n=%d m=%d minCover=%d predicted=%d maxDeletable=%d  [%s]\n",
				i, *n, *m, len(mc), *m-len(mc), exact, status)
			fmt.Printf("  sets: %v\n", in.Sets)
			fmt.Printf("  deletable now (C1 candidates): %v\n", gad.DeletableNow())
		}
	case "3sat":
		vars := *n
		if vars > 4 {
			fmt.Fprintln(os.Stderr, "capping variables at 4: the C3 check enumerates 2^(2n+1) abort sets")
			vars = 4
		}
		if vars < 3 {
			vars = 3
		}
		fmt.Printf("Theorem 6: 3-SAT -> multiple-write schedule; C deletable iff UNSAT\n\n")
		for i := 0; i < *trials; i++ {
			f := sat.Random3CNF(rng, vars, *m)
			_, satisfiable := sat.Solve(f)
			gad, err := reduction.BuildThreeSAT(f)
			if err != nil {
				fmt.Fprintf(os.Stderr, "build: %v\n", err)
				os.Exit(1)
			}
			deletable, viol, err := gad.CDeletable()
			if err != nil {
				fmt.Fprintf(os.Stderr, "C3: %v\n", err)
				os.Exit(1)
			}
			status := "OK"
			if deletable == satisfiable {
				status = "MISMATCH"
			}
			fmt.Printf("formula %d: %v\n", i, f)
			fmt.Printf("  DPLL satisfiable=%v, C deletable=%v  [%s]\n", satisfiable, deletable, status)
			if viol != nil {
				a := gad.AssignmentFromViolation(viol)
				fmt.Printf("  violating abort set M=%v decodes to assignment %v (satisfies: %v)\n",
					viol.M, a, f.Satisfies(a))
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "txgc-np: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}
