// Command txgc-bench regenerates the experiment tables of EXPERIMENTS.md
// (E1–E12), each corresponding to a figure, example, theorem, or
// complexity claim of "Deleting Completed Transactions".
//
// Usage:
//
//	txgc-bench                 # run every experiment
//	txgc-bench -exp E4,E5      # run selected experiments
//	txgc-bench -quick          # shrunken sweeps
//	txgc-bench -seed 7 -csv    # change the seed; emit CSV instead of text
//	txgc-bench -cpuprofile cpu.pprof -exp E4   # profile the hot path
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"

	//lint:ignore layering-client-facade the bench harness measures engine internals (shard counts, WAL modes) that the client facade deliberately hides; it is an experiment rig, not an example to copy
	"repro/internal/bench"
)

func main() {
	var (
		expFlag    = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		seed       = flag.Int64("seed", 1, "random seed for all experiments")
		quick      = flag.Bool("quick", false, "shrink sweeps for a fast run")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		list       = flag.Bool("list", false, "list experiments and exit")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "txgc-bench:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "txgc-bench:", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}

	var selected []bench.Experiment
	if *expFlag == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "txgc-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	cfg := bench.RunConfig{Seed: *seed, Quick: *quick, Out: os.Stderr}
	for _, e := range selected {
		fmt.Fprintf(os.Stderr, "running %s: %s...\n", e.ID, e.Name)
		for _, tb := range e.Run(cfg) {
			if *csv {
				fmt.Printf("# %s: %s\n", tb.ID, tb.Title)
				tb.CSV(os.Stdout)
				fmt.Println()
			} else {
				tb.Render(os.Stdout)
			}
		}
	}
}
