// Command txgc-trace runs a synthetic workload through the conflict-graph
// scheduler under a chosen deletion policy and prints a per-step trace of
// graph size, retained completed transactions, and deletions — the raw
// series behind experiment E7's retention table.
//
// Usage:
//
//	txgc-trace -policy greedy-c1 -txns 100 -entities 16 -every 10
//	txgc-trace -policy nogc -straggler 20 -csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

func policyByName(name string) (core.Policy, bool) {
	switch name {
	case "nogc":
		return core.NoGC{}, true
	case "lemma1":
		return core.Lemma1Policy{}, true
	case "greedy-c1":
		return core.GreedyC1{}, true
	case "greedy-c1-newest":
		return core.GreedyC1{NewestFirst: true}, true
	case "max-safe":
		return core.MaxSafeExact{}, true
	case "noncurrent-safe":
		return core.NoncurrentSafe{}, true
	case "commit-gc-unsafe":
		return core.CommitGC{}, true
	default:
		return nil, false
	}
}

func main() {
	var (
		policyName = flag.String("policy", "greedy-c1", "deletion policy: nogc, lemma1, greedy-c1, greedy-c1-newest, max-safe, noncurrent-safe, commit-gc-unsafe")
		entities   = flag.Int("entities", 16, "database size")
		txns       = flag.Int("txns", 100, "transactions to issue")
		maxActive  = flag.Int("active", 5, "max concurrent active transactions")
		straggler  = flag.Int("straggler", 0, "reads performed by one long-running straggler (0 = none)")
		hotFrac    = flag.Float64("hot", 0, "hotspot fraction (0 = uniform)")
		zipf       = flag.Float64("zipf", 0, "zipf skew s > 1 (0 = disabled)")
		seed       = flag.Int64("seed", 1, "workload seed")
		every      = flag.Int("every", 1, "print every Nth step")
		csv        = flag.Bool("csv", false, "CSV output")
	)
	flag.Parse()

	policy, ok := policyByName(*policyName)
	if !ok {
		fmt.Fprintf(os.Stderr, "txgc-trace: unknown policy %q\n", *policyName)
		os.Exit(2)
	}
	s := core.NewScheduler(core.Config{Policy: policy})
	gen := workload.New(workload.Config{
		Entities: *entities, Txns: *txns, MaxActive: *maxActive,
		ReadsMin: 1, ReadsMax: 4, WritesMin: 1, WritesMax: 2,
		Straggler: *straggler, HotFrac: *hotFrac, ZipfS: *zipf, Seed: *seed,
	})

	if *csv {
		fmt.Println("step,kind,txn,accepted,nodes,active,completed,arcs,deleted_total")
	} else {
		fmt.Printf("%6s  %-18s %-8s %6s %7s %10s %6s %8s\n",
			"step", "input", "outcome", "nodes", "active", "completed", "arcs", "deleted")
	}
	var n int
	for {
		step, ok := gen.Next()
		if !ok {
			break
		}
		res, err := s.Apply(step)
		if err != nil {
			fmt.Fprintf(os.Stderr, "txgc-trace: %v\n", err)
			os.Exit(1)
		}
		if !res.Accepted {
			gen.NotifyAbort(step.Txn)
		}
		n++
		if n%*every != 0 {
			continue
		}
		st := s.Stats()
		if *csv {
			fmt.Printf("%d,%s,%d,%v,%d,%d,%d,%d,%d\n",
				n, step.Kind, step.Txn, res.Accepted,
				s.Graph().NumNodes(), s.NumActive(), s.NumCompleted(),
				s.Graph().NumArcs(), st.Deleted)
		} else {
			outcome := "ok"
			if !res.Accepted {
				outcome = "ABORT"
			}
			fmt.Printf("%6d  %-18s %-8s %6d %7d %10d %6d %8d\n",
				n, step.String(), outcome,
				s.Graph().NumNodes(), s.NumActive(), s.NumCompleted(),
				s.Graph().NumArcs(), st.Deleted)
		}
	}
	st := s.Stats()
	fmt.Fprintf(os.Stderr,
		"done: %d steps, %d accepted, %d aborts, %d completed, %d deleted, peak kept %d, avg kept %.2f\n",
		n, st.Accepted, st.Aborts, st.Completed, st.Deleted, st.PeakKept, st.AvgKept())
	_ = model.NoTxn
}
