// Command txgc-serve runs the sharded conflict-graph engine as a
// JSON-lines transaction service over the public txdel/client session API:
// clients submit begin/read/write steps and receive accept/reject/abort
// outcomes as the engine schedules (and garbage-collects) in real time.
//
// # Wire protocol v2
//
// A v2 session starts with a versioned handshake; every response then
// carries a machine-readable "code" field mapped from the client error
// taxonomy, and a begin may carry a deadline:
//
//	{"op":"hello","version":2}                    → {"outcome":"ok","version":2}
//	{"op":"begin","txn":1,"footprint":[0,5,9],"deadline_ms":500,"priority":"high"}
//	                                              → {"txn":1,"outcome":"accepted"}
//	{"op":"read","txn":1,"entity":5}              → {"txn":1,"outcome":"accepted"}
//	{"op":"write","txn":1,"entities":[5,9]}       → {"txn":1,"outcome":"accepted","completed":true}
//	{"op":"abort","txn":1}                        → {"txn":1,"outcome":"aborted"}
//	{"op":"stats"}                                → {"outcome":"ok","stats":{...}}
//
// Error codes: "cycle" (conflict cycle on one shard), "cross-cycle" (cycle
// spanning shard graphs, caught by the cross-arc registry), "misroute"
// (entity outside the declared footprint's partitions), "txn-aborted"
// (step for a dead or unknown transaction — deadline expiry included),
// "overload" (admission control shed the begin; retry later or use
// "priority":"high"), "straggler-aborted" (the retention governor reaped
// the transaction as the oldest live straggler; shorten it, retry, or use
// "priority":"high"), "protocol" (duplicate begin, malformed request), and
// "closed". A begin's deadline_ms starts a timer that aborts the
// transaction when it expires — even between PREPARE and the commit
// decision of a cross-shard write, releasing prepared pins everywhere.
//
// The batch op pipelines several begin/read/write steps through a single
// engine submission (consecutive same-shard steps cost one queue hop
// instead of one each), answering with one result per step:
//
//	{"op":"batch","steps":[{"op":"begin","txn":1,"footprint":[0,4]},
//	                       {"op":"read","txn":1,"entity":4},
//	                       {"op":"write","txn":1,"entities":[0]}]}
//	→ {"outcome":"ok","results":[{"txn":1,"outcome":"accepted"},
//	                             {"txn":1,"outcome":"accepted"},
//	                             {"txn":1,"outcome":"accepted","completed":true}]}
//
// A begin footprint spanning several partitions (entity mod shards) marks
// the transaction cross-partition: it runs as one sub-transaction per
// participating shard, its reads apply immediately on their owning shards,
// and the final write commits through the cross-shard two-phase protocol.
// Concurrent transactions on other shards (and on the participants) are
// never disturbed.
//
// # Wire protocol v1 (shim)
//
// A session that never sends the hello op is served as v1: the same
// request shapes are accepted and answered without the "code" field
// (deadline_ms and priority are ignored), so pre-v2 clients keep getting
// correct answers. Historical note: v1 servers predating the cross-shard
// two-phase commit could answer "buffered" for a cross-partition step
// (steps were held client-side until the final write); the 2PC engine
// applies cross steps immediately and that outcome no longer exists.
//
// Usage:
//
//	txgc-serve                          # serve stdin/stdout
//	txgc-serve -addr :7433              # serve TCP, one session per conn
//	txgc-serve -shards 8 -policy greedy-c1 -sweep-every 16 -verify
//	txgc-serve -overload-watermark 256  # shed begins on saturated shards
//	txgc-serve -retention-watermark 512 # reap stragglers pinning retained storage
//	txgc-serve -data-dir /var/lib/txgc  # per-shard WAL + checkpoints; recover on start
//	txgc-serve -data-dir d -fsync-batch 1  # strict durability: fsync before every ack
//
// With -verify the server keeps a full trace and, at shutdown (stdin EOF
// or SIGINT/SIGTERM), replays the accepted subschedule through the offline
// CSR referee, reporting the verdict on stderr.
//
// # Observability
//
//	txgc-serve -metrics-addr :9090      # Prometheus text endpoint on /metrics
//	txgc-serve -capture run.jsonl       # event stream + step trace for replay
//
// -metrics-addr serves per-outcome event counters, per-shard queue-depth/
// retained/prepared gauges, and session latency histograms in the
// Prometheus text format. -capture appends every lifecycle event as a JSON
// line ({"rec":"event",...}) while the server runs and, at shutdown, the
// full step trace ({"rec":"step",...}) — one file holding both halves of
// the record/replay contract (see docs/observability.md). Telemetry never
// blocks the engine: under sink pressure events are dropped and counted
// (txgc_events_dropped_total), never queued against the hot path.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/emit"
	"repro/txdel"
	"repro/txdel/client"
)

// maxVersion is the newest wire protocol this server speaks.
const maxVersion = 2

type request struct {
	Op        string  `json:"op"`
	Txn       int64   `json:"txn"`
	Entity    *int32  `json:"entity,omitempty"`
	Entities  []int32 `json:"entities,omitempty"`
	Footprint []int32 `json:"footprint,omitempty"`
	// Version is the hello op's requested protocol version.
	Version int `json:"version,omitempty"`
	// DeadlineMS (v2, begin) bounds the transaction's lifetime.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Priority (v2, begin) is "" / "normal" or "high" (bypasses admission
	// control).
	Priority string `json:"priority,omitempty"`
	// Steps carries the sub-requests of a batch op (begin/read/write
	// only); the whole pipeline is submitted in one engine call.
	Steps []request `json:"steps,omitempty"`
}

// response uses pointers for txn and aborted so that transaction ID 0 (a
// perfectly valid ID) still serializes instead of vanishing to omitempty.
type response struct {
	Txn       *int64 `json:"txn,omitempty"`
	Outcome   string `json:"outcome"`
	Completed bool   `json:"completed,omitempty"`
	Aborted   *int64 `json:"aborted,omitempty"`
	Error     string `json:"error,omitempty"`
	// Code is the v2 machine-readable error code (client.ErrorCode).
	Code    string        `json:"code,omitempty"`
	Version int           `json:"version,omitempty"`
	Stats   *client.Stats `json:"stats,omitempty"`
	// Results holds one response per step of a batch op.
	Results []response `json:"results,omitempty"`
}

func ref(v int64) *int64 { return &v }

func entities(xs []int32) []txdel.Entity {
	out := make([]txdel.Entity, len(xs))
	for i, x := range xs {
		out[i] = txdel.Entity(x)
	}
	return out
}

// ownedTxn is one transaction begun on this stream: a client session (with
// its deadline cancel, if any), or a bare ID begun through the raw batch
// path.
type ownedTxn struct {
	txn    *client.Txn // nil for batch-path transactions
	cancel context.CancelFunc
}

// session serves one client stream. It tracks the transactions begun on
// this stream so a disconnect aborts whatever the client left active, and
// remembers the negotiated protocol version (1 until a hello says
// otherwise).
type session struct {
	db      *client.DB
	version int
	mu      sync.Mutex
	own     map[txdel.TxnID]ownedTxn
}

func newSession(db *client.DB) *session {
	return &session{db: db, version: 1, own: map[txdel.TxnID]ownedTxn{}}
}

func (s *session) track(id txdel.TxnID, o ownedTxn) {
	s.mu.Lock()
	s.own[id] = o
	s.mu.Unlock()
}

// untrack forgets id and releases its deadline timer.
func (s *session) untrack(id txdel.TxnID) {
	s.mu.Lock()
	o, ok := s.own[id]
	delete(s.own, id)
	s.mu.Unlock()
	if ok && o.cancel != nil {
		o.cancel()
	}
}

func (s *session) lookup(id txdel.TxnID) (ownedTxn, bool) {
	s.mu.Lock()
	o, ok := s.own[id]
	s.mu.Unlock()
	return o, ok
}

func (s *session) cleanup() {
	s.mu.Lock()
	owned := make(map[txdel.TxnID]ownedTxn, len(s.own))
	for id, o := range s.own {
		owned[id] = o
	}
	s.own = map[txdel.TxnID]ownedTxn{}
	s.mu.Unlock()
	for id, o := range owned {
		if o.txn != nil {
			_ = o.txn.Abort()
		} else {
			s.db.Abort(id)
		}
		if o.cancel != nil {
			o.cancel()
		}
	}
}

// finish annotates a response from an operation error: outcome
// classification, human-readable message, and (v2 only) the wire code.
func (s *session) finish(out response, err error) response {
	if err == nil {
		if out.Outcome == "" {
			out.Outcome = "accepted"
		}
		return out
	}
	if errors.Is(err, client.ErrProtocol) || errors.Is(err, client.ErrClosed) {
		out.Outcome = "error"
	} else {
		out.Outcome = "rejected"
	}
	out.Error = err.Error()
	if s.version >= 2 {
		out.Code = client.ErrorCode(err)
	}
	return out
}

// stepOf translates one batchable sub-request into a scheduler step.
func stepOf(sub request) (txdel.Step, error) {
	id := txdel.TxnID(sub.Txn)
	switch sub.Op {
	case "begin":
		return txdel.BeginDeclared(id, entities(sub.Footprint)...), nil
	case "read":
		if sub.Entity == nil {
			return txdel.Step{}, fmt.Errorf("read needs an entity")
		}
		return txdel.Read(id, txdel.Entity(*sub.Entity)), nil
	case "write":
		return txdel.WriteFinal(id, entities(sub.Entities)...), nil
	default:
		return txdel.Step{}, fmt.Errorf("op %q cannot appear in a batch", sub.Op)
	}
}

// handleBatch submits a pipeline of steps through one engine batch call,
// answering with one result per step.
func (s *session) handleBatch(req request) response {
	if len(req.Steps) == 0 {
		return s.protoErr(nil, "batch needs steps")
	}
	steps := make([]txdel.Step, len(req.Steps))
	for i, sub := range req.Steps {
		st, err := stepOf(sub)
		if err != nil {
			return s.protoErr(nil, fmt.Sprintf("batch step %d: %v", i, err))
		}
		steps[i] = st
	}
	results := s.db.SubmitBatch(steps)
	out := response{Outcome: "ok", Results: make([]response, len(results))}
	for i, res := range results {
		if req.Steps[i].Op == "begin" && res.Accepted() {
			s.track(steps[i].Txn, ownedTxn{})
		}
		out.Results[i] = s.fromResult(int64(steps[i].Txn), res)
	}
	return out
}

// protoErr is a malformed-request response.
func (s *session) protoErr(txn *int64, msg string) response {
	out := response{Txn: txn, Outcome: "error", Error: msg}
	if s.version >= 2 {
		out.Code = "protocol"
	}
	return out
}

func (s *session) handleBegin(req request) response {
	id := txdel.TxnID(req.Txn)
	ctx := context.Background()
	var cancel context.CancelFunc
	if s.version >= 2 && req.DeadlineMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
	}
	opts := []client.BeginOption{client.WithID(id), client.WithFootprint(entities(req.Footprint)...)}
	if s.version >= 2 && req.Priority == "high" {
		opts = append(opts, client.WithPriority(client.PriorityHigh))
	}
	txn, err := s.db.Begin(ctx, opts...)
	if err != nil {
		if cancel != nil {
			cancel()
		}
		return s.finish(response{Txn: ref(req.Txn)}, err)
	}
	s.track(id, ownedTxn{txn: txn, cancel: cancel})
	return response{Txn: ref(req.Txn), Outcome: "accepted"}
}

func (s *session) handle(req request) response {
	id := txdel.TxnID(req.Txn)
	switch req.Op {
	case "hello":
		v := req.Version
		if v < 1 || v > maxVersion {
			return s.protoErr(nil, fmt.Sprintf("unsupported protocol version %d (this server speaks 1..%d)", req.Version, maxVersion))
		}
		s.version = v
		return response{Outcome: "ok", Version: v}
	case "begin":
		return s.handleBegin(req)
	case "read":
		if req.Entity == nil {
			return s.protoErr(ref(req.Txn), "read needs an entity")
		}
		x := txdel.Entity(*req.Entity)
		o, ok := s.lookup(id)
		if !ok || o.txn == nil {
			// Not a session of this stream (begun elsewhere, or via the raw
			// batch path): submit the bare step.
			return s.fromResult(req.Txn, s.db.SubmitBatch([]txdel.Step{txdel.Read(id, x)})[0])
		}
		err := o.txn.Read(context.Background(), x)
		out := s.finish(response{Txn: ref(req.Txn)}, err)
		if err != nil && !errors.Is(err, client.ErrProtocol) {
			out.Aborted = ref(req.Txn)
			s.untrack(id)
		}
		return out
	case "write":
		o, ok := s.lookup(id)
		if !ok || o.txn == nil {
			return s.fromResult(req.Txn, s.db.SubmitBatch([]txdel.Step{txdel.WriteFinal(id, entities(req.Entities)...)})[0])
		}
		err := o.txn.Write(context.Background(), entities(req.Entities)...)
		out := s.finish(response{Txn: ref(req.Txn)}, err)
		if err == nil {
			out.Completed = true
			s.untrack(id)
		} else if !errors.Is(err, client.ErrProtocol) {
			out.Aborted = ref(req.Txn)
			s.untrack(id)
		}
		return out
	case "abort":
		o, ok := s.lookup(id)
		s.untrack(id)
		aborted := false
		if ok && o.txn != nil {
			aborted = o.txn.Abort() == nil
		} else {
			aborted = s.db.Abort(id)
		}
		if !aborted {
			return s.protoErr(ref(req.Txn), "unknown transaction")
		}
		return response{Txn: ref(req.Txn), Outcome: "aborted", Aborted: ref(req.Txn)}
	case "batch":
		return s.handleBatch(req)
	case "stats":
		st := s.db.Stats()
		return response{Outcome: "ok", Stats: &st}
	default:
		return s.protoErr(ref(req.Txn), fmt.Sprintf("unknown op %q", req.Op))
	}
}

// fromResult renders a raw-path engine Result.
func (s *session) fromResult(txn int64, res client.Result) response {
	out := s.finish(response{Txn: ref(txn)}, res.Err)
	if res.CompletedTxn != txdel.NoTxn {
		out.Completed = true
		s.untrack(res.CompletedTxn)
	}
	if res.Aborted != txdel.NoTxn {
		out.Aborted = ref(int64(res.Aborted))
		s.untrack(res.Aborted)
	}
	return out
}

func (s *session) serve(r io.Reader, w io.Writer) {
	defer s.cleanup()
	in := bufio.NewScanner(r)
	in.Buffer(make([]byte, 0, 1<<16), 1<<20)
	out := bufio.NewWriter(w)
	enc := json.NewEncoder(out)
	for in.Scan() {
		line := in.Bytes()
		if len(line) == 0 {
			continue
		}
		var req request
		var resp response
		if err := json.Unmarshal(line, &req); err != nil {
			resp = s.protoErr(nil, "bad request: "+err.Error())
		} else {
			resp = s.handle(req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
		if err := out.Flush(); err != nil {
			return
		}
	}
}

func main() {
	var (
		addr        = flag.String("addr", "", "TCP listen address (empty: serve stdin/stdout)")
		shards      = flag.Int("shards", 4, "number of entity partitions / scheduler goroutines")
		policyName  = flag.String("policy", "greedy-c1", "deletion policy per shard")
		batch       = flag.Int("batch", 64, "max steps a shard applies between GC opportunities")
		queue       = flag.Int("queue", 1024, "per-shard submission queue depth")
		sweepEvery  = flag.Int("sweep-every", 8, "sweep after this many completions per shard")
		watermark   = flag.Int("overload-watermark", 0, "shed begins when a shard's backlog reaches this depth (0 = never shed)")
		retention   = flag.Int("retention-watermark", 0, "abort the oldest straggler when retained completed transactions reach this count (0 = never reap; needs a deletion policy)")
		verify      = flag.Bool("verify", false, "trace the run and check the accepted subschedule is CSR at shutdown")
		metricsAddr = flag.String("metrics-addr", "", "HTTP listen address for the Prometheus /metrics endpoint (empty: no metrics)")
		capturePath = flag.String("capture", "", "append the event stream (and, at shutdown, the step trace) to this file as JSON lines")
		dataDir     = flag.String("data-dir", "", "directory for per-shard write-ahead logs and checkpoints (empty: in-memory, no durability)")
		fsyncBatch  = flag.Int("fsync-batch", 0, "fsync the WAL every N records (1 = every record before its ack; 0 = default 64; needs -data-dir)")
	)
	flag.Parse()

	var sinks []emit.Sink
	var metrics *emit.MetricsSink
	if *metricsAddr != "" {
		metrics = emit.NewMetricsSink()
		sinks = append(sinks, metrics)
	}
	var captureFile *os.File
	if *capturePath != "" {
		f, err := os.Create(*capturePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "txgc-serve:", err)
			os.Exit(2)
		}
		captureFile = f
		sinks = append(sinks, emit.NewCaptureSink(f))
	}

	db, err := client.Open(client.Config{
		Shards:                *shards,
		Policy:                *policyName,
		BatchSize:             *batch,
		QueueDepth:            *queue,
		SweepEveryCompletions: *sweepEvery,
		OverloadWatermark:     *watermark,
		RetentionWatermark:    *retention,
		Verify:                *verify,
		Trace:                 captureFile != nil,
		Sinks:                 sinks,
		DataDir:               *dataDir,
		FsyncBatch:            *fsyncBatch,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "txgc-serve:", err)
		os.Exit(2)
	}
	if rep := db.Recovery(); rep != nil {
		fmt.Fprintf(os.Stderr, "txgc-serve: recovered %d shards: %d records replayed, %d txns retained, %d orphans aborted, %d cross committed, %d cross aborted, %d in doubt\n",
			rep.Shards, rep.RecordsReplayed, rep.TxnsRetained, rep.OrphansAborted, rep.CrossCommitted, rep.CrossAborted, len(rep.InDoubt))
	}

	if metrics != nil {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics)
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "txgc-serve:", err)
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "txgc-serve: metrics on http://"+ln.Addr().String()+"/metrics")
		go func() {
			if err := http.Serve(ln, mux); err != nil {
				fmt.Fprintln(os.Stderr, "txgc-serve: metrics server:", err)
			}
		}()
	}

	shutdown := func(code int) {
		st := db.Stats()
		fmt.Fprintf(os.Stderr, "txgc-serve: %d submitted, %d accepted, %d completed, %d shed, %d deleted by GC, %d cross (%d prepares, %d cross aborts), %d barrier kills\n",
			st.Submitted, st.Accepted, st.Completed, st.Shed, st.Deleted, st.CrossTxns, st.Prepares, st.CrossAborts, st.BarrierKills)
		if bus := db.Bus(); bus != nil {
			fmt.Fprintf(os.Stderr, "txgc-serve: telemetry: %d events emitted, %d dropped\n", bus.Emitted(), bus.Dropped())
		}
		// Close drains the bus first, so every live event line is flushed to
		// the capture file before the step trace is appended after it.
		if err := db.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "txgc-serve: VERIFY FAILED:", err)
			code = 1
		} else if *verify {
			fmt.Fprintln(os.Stderr, "txgc-serve: verify OK: accepted subschedule is CSR")
		}
		if captureFile != nil {
			if err := db.DumpTrace(captureFile); err != nil {
				fmt.Fprintln(os.Stderr, "txgc-serve: capture:", err)
				code = 1
			}
			if err := captureFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "txgc-serve: capture:", err)
				code = 1
			}
		}
		os.Exit(code)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigc
		shutdown(0)
	}()

	if *addr == "" {
		newSession(db).serve(os.Stdin, os.Stdout)
		shutdown(0)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "txgc-serve:", err)
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "txgc-serve: listening on", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			fmt.Fprintln(os.Stderr, "txgc-serve:", err)
			shutdown(1)
		}
		go func(c net.Conn) {
			defer c.Close()
			newSession(db).serve(c, c)
		}(conn)
	}
}
