// Command txgc-serve runs the sharded conflict-graph engine as a
// JSON-lines transaction service: clients submit begin/read/write steps
// and receive accept/reject/abort outcomes as the engine schedules (and
// garbage-collects) in real time.
//
// One request per line, one response per line:
//
//	{"op":"begin","txn":1,"footprint":[0,5,9]}   → {"txn":1,"outcome":"accepted"}
//	{"op":"read","txn":1,"entity":5}             → {"txn":1,"outcome":"accepted"}
//	{"op":"write","txn":1,"entities":[5,9]}      → {"txn":1,"outcome":"accepted","completed":true}
//	{"op":"abort","txn":1}                       → {"txn":1,"outcome":"aborted"}
//	{"op":"stats"}                               → {"outcome":"ok","stats":{...}}
//
// The batch op pipelines several begin/read/write steps through a single
// engine submission (consecutive same-shard steps cost one queue hop
// instead of one each), answering with one result per step:
//
//	{"op":"batch","steps":[{"op":"begin","txn":1,"footprint":[0,4]},
//	                       {"op":"read","txn":1,"entity":4},
//	                       {"op":"write","txn":1,"entities":[0]}]}
//	→ {"outcome":"ok","results":[{"txn":1,"outcome":"accepted"},
//	                             {"txn":1,"outcome":"accepted"},
//	                             {"txn":1,"outcome":"accepted","completed":true}]}
//
// A begin footprint spanning several partitions (entity mod shards) marks
// the transaction cross-partition: it runs as one sub-transaction per
// participating shard (all sharing the transaction ID), its reads apply
// immediately on their owning shards, and the final write commits through
// the cross-shard two-phase protocol — PREPARE votes on every participant,
// then COMMIT or ABORT. Concurrent transactions on other shards (and on
// the participants) are never disturbed. A rejected outcome means the
// transaction aborted: a conflict cycle on one shard, a cycle spanning
// shard graphs caught by the cross-arc registry at prepare time, or a
// partition misroute. The "buffered" outcome of pre-2PC servers is no
// longer produced. The stats op additionally reports Prepares,
// CrossAborts, and PreparedByShard (prepared-but-undecided
// sub-transactions pinned per shard).
//
// Usage:
//
//	txgc-serve                          # serve stdin/stdout
//	txgc-serve -addr :7433              # serve TCP, one session per conn
//	txgc-serve -shards 8 -policy greedy-c1 -sweep-every 16 -verify
//
// With -verify the server keeps a full trace and, at shutdown (stdin EOF
// or SIGINT/SIGTERM), replays the accepted subschedule through the offline
// CSR referee, reporting the verdict on stderr.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/trace"
)

type request struct {
	Op        string  `json:"op"`
	Txn       int64   `json:"txn"`
	Entity    *int32  `json:"entity,omitempty"`
	Entities  []int32 `json:"entities,omitempty"`
	Footprint []int32 `json:"footprint,omitempty"`
	// Steps carries the sub-requests of a batch op (begin/read/write
	// only); the whole pipeline is submitted in one engine call.
	Steps []request `json:"steps,omitempty"`
}

// response uses pointers for txn and aborted so that transaction ID 0 (a
// perfectly valid ID) still serializes instead of vanishing to omitempty.
type response struct {
	Txn       *int64        `json:"txn,omitempty"`
	Outcome   string        `json:"outcome"`
	Completed bool          `json:"completed,omitempty"`
	Aborted   *int64        `json:"aborted,omitempty"`
	Error     string        `json:"error,omitempty"`
	Stats     *engine.Stats `json:"stats,omitempty"`
	// Results holds one response per step of a batch op.
	Results []response `json:"results,omitempty"`
}

func ref(v int64) *int64 { return &v }

func policyFactory(name string) (func() core.Policy, error) {
	switch name {
	case "nogc", "none":
		return nil, nil
	case "lemma1":
		return func() core.Policy { return core.Lemma1Policy{} }, nil
	case "greedy-c1":
		return func() core.Policy { return core.GreedyC1{} }, nil
	case "greedy-c1-newest":
		return func() core.Policy { return core.GreedyC1{NewestFirst: true} }, nil
	case "noncurrent-safe":
		return func() core.Policy { return core.NoncurrentSafe{} }, nil
	case "max-safe":
		return func() core.Policy { return core.MaxSafeExact{} }, nil
	default:
		return nil, fmt.Errorf("unknown policy %q (nogc, lemma1, greedy-c1, greedy-c1-newest, noncurrent-safe, max-safe)", name)
	}
}

func entities(xs []int32) []model.Entity {
	out := make([]model.Entity, len(xs))
	for i, x := range xs {
		out[i] = model.Entity(x)
	}
	return out
}

// session serves one client stream. It tracks the transactions begun on
// this stream so a disconnect aborts whatever the client left active.
type session struct {
	eng *engine.Engine
	mu  sync.Mutex
	own map[model.TxnID]bool
}

func (s *session) track(id model.TxnID)   { s.mu.Lock(); s.own[id] = true; s.mu.Unlock() }
func (s *session) untrack(id model.TxnID) { s.mu.Lock(); delete(s.own, id); s.mu.Unlock() }

func (s *session) cleanup() {
	s.mu.Lock()
	ids := make([]model.TxnID, 0, len(s.own))
	for id := range s.own {
		ids = append(ids, id)
	}
	s.own = map[model.TxnID]bool{}
	s.mu.Unlock()
	for _, id := range ids {
		s.eng.Abort(id)
	}
}

// stepOf translates one batchable sub-request into a scheduler step.
func stepOf(sub request) (model.Step, error) {
	id := model.TxnID(sub.Txn)
	switch sub.Op {
	case "begin":
		return model.BeginDeclared(id, entities(sub.Footprint)...), nil
	case "read":
		if sub.Entity == nil {
			return model.Step{}, fmt.Errorf("read needs an entity")
		}
		return model.Read(id, model.Entity(*sub.Entity)), nil
	case "write":
		return model.WriteFinal(id, entities(sub.Entities)...), nil
	default:
		return model.Step{}, fmt.Errorf("op %q cannot appear in a batch", sub.Op)
	}
}

// handleBatch submits a pipeline of steps through one engine batch call,
// answering with one result per step.
func (s *session) handleBatch(req request) response {
	if len(req.Steps) == 0 {
		return response{Outcome: "error", Error: "batch needs steps"}
	}
	steps := make([]model.Step, len(req.Steps))
	for i, sub := range req.Steps {
		st, err := stepOf(sub)
		if err != nil {
			return response{Outcome: "error", Error: fmt.Sprintf("batch step %d: %v", i, err)}
		}
		steps[i] = st
	}
	results := s.eng.SubmitBatch(steps)
	out := response{Outcome: "ok", Results: make([]response, len(results))}
	for i, res := range results {
		if steps[i].Kind == model.KindBegin &&
			(res.Outcome == engine.OutcomeAccepted || res.Outcome == engine.OutcomeBuffered) {
			s.track(steps[i].Txn)
		}
		out.Results[i] = s.fromResult(int64(steps[i].Txn), res)
	}
	return out
}

func (s *session) handle(req request) response {
	id := model.TxnID(req.Txn)
	switch req.Op {
	case "batch":
		return s.handleBatch(req)
	case "begin":
		res := s.eng.Submit(model.BeginDeclared(id, entities(req.Footprint)...))
		if res.Outcome == engine.OutcomeAccepted || res.Outcome == engine.OutcomeBuffered {
			s.track(id)
		}
		return s.fromResult(req.Txn, res)
	case "read":
		if req.Entity == nil {
			return response{Txn: ref(req.Txn), Outcome: "error", Error: "read needs an entity"}
		}
		return s.fromResult(req.Txn, s.eng.Submit(model.Read(id, model.Entity(*req.Entity))))
	case "write":
		return s.fromResult(req.Txn, s.eng.Submit(model.WriteFinal(id, entities(req.Entities)...)))
	case "abort":
		s.untrack(id)
		if !s.eng.Abort(id) {
			return response{Txn: ref(req.Txn), Outcome: "error", Error: "unknown transaction"}
		}
		return response{Txn: ref(req.Txn), Outcome: "aborted", Aborted: ref(req.Txn)}
	case "stats":
		st := s.eng.Stats()
		return response{Outcome: "ok", Stats: &st}
	default:
		return response{Txn: ref(req.Txn), Outcome: "error", Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func (s *session) fromResult(txn int64, res engine.Result) response {
	out := response{Txn: ref(txn)}
	switch res.Outcome {
	case engine.OutcomeAccepted:
		out.Outcome = "accepted"
	case engine.OutcomeBuffered:
		out.Outcome = "buffered"
	case engine.OutcomeRejected:
		out.Outcome = "rejected"
	case engine.OutcomeError:
		out.Outcome = "error"
	}
	if res.CompletedTxn != model.NoTxn {
		out.Completed = true
		s.untrack(res.CompletedTxn)
	}
	if res.Aborted != model.NoTxn {
		out.Aborted = ref(int64(res.Aborted))
		s.untrack(res.Aborted)
	}
	if res.Err != nil {
		out.Error = res.Err.Error()
	}
	return out
}

func (s *session) serve(r io.Reader, w io.Writer) {
	defer s.cleanup()
	in := bufio.NewScanner(r)
	in.Buffer(make([]byte, 0, 1<<16), 1<<20)
	out := bufio.NewWriter(w)
	enc := json.NewEncoder(out)
	for in.Scan() {
		line := in.Bytes()
		if len(line) == 0 {
			continue
		}
		var req request
		var resp response
		if err := json.Unmarshal(line, &req); err != nil {
			resp = response{Outcome: "error", Error: "bad request: " + err.Error()}
		} else {
			resp = s.handle(req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
		if err := out.Flush(); err != nil {
			return
		}
	}
}

func main() {
	var (
		addr       = flag.String("addr", "", "TCP listen address (empty: serve stdin/stdout)")
		shards     = flag.Int("shards", 4, "number of entity partitions / scheduler goroutines")
		policyName = flag.String("policy", "greedy-c1", "deletion policy per shard")
		batch      = flag.Int("batch", 64, "max steps a shard applies between GC opportunities")
		queue      = flag.Int("queue", 1024, "per-shard submission queue depth")
		sweepEvery = flag.Int("sweep-every", 8, "sweep after this many completions per shard")
		verify     = flag.Bool("verify", false, "trace the run and check the accepted subschedule is CSR at shutdown")
	)
	flag.Parse()

	factory, err := policyFactory(*policyName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "txgc-serve:", err)
		os.Exit(2)
	}
	cfg := engine.Config{
		Shards:                *shards,
		Policy:                factory,
		BatchSize:             *batch,
		QueueDepth:            *queue,
		SweepEveryCompletions: *sweepEvery,
	}
	var log *trace.SafeLog
	if *verify {
		log = trace.NewSafeLog()
		cfg.Log = log
	}
	eng := engine.New(cfg)

	shutdown := func(code int) {
		st := eng.Stats()
		fmt.Fprintf(os.Stderr, "txgc-serve: %d submitted, %d accepted, %d completed, %d deleted by GC, %d cross (%d prepares, %d cross aborts), %d barrier kills\n",
			st.Submitted, st.Accepted, st.Completed, st.Deleted, st.CrossTxns, st.Prepares, st.CrossAborts, st.BarrierKills)
		if log != nil {
			if err := log.CheckAcceptedCSR(); err != nil {
				fmt.Fprintln(os.Stderr, "txgc-serve: VERIFY FAILED:", err)
				code = 1
			} else {
				fmt.Fprintf(os.Stderr, "txgc-serve: verify OK: accepted subschedule of %d steps is CSR\n",
					len(log.AcceptedSubschedule()))
			}
		}
		os.Exit(code)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigc
		shutdown(0)
	}()

	if *addr == "" {
		s := &session{eng: eng, own: map[model.TxnID]bool{}}
		s.serve(os.Stdin, os.Stdout)
		shutdown(0)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "txgc-serve:", err)
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "txgc-serve: listening on", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			fmt.Fprintln(os.Stderr, "txgc-serve:", err)
			shutdown(1)
		}
		go func(c net.Conn) {
			defer c.Close()
			s := &session{eng: eng, own: map[model.TxnID]bool{}}
			s.serve(c, c)
		}(conn)
	}
}
