package main

import (
	"strings"
	"testing"
	"time"

	"repro/txdel/client"
)

func testSession(t *testing.T, cfg client.Config) *session {
	t.Helper()
	db, err := client.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := db.Close(); err != nil {
			t.Errorf("Close (verify): %v", err)
		}
	})
	return newSession(db)
}

func i32(v int32) *int32 { return &v }

// TestWireV1Shim drives a v1 session (no hello): the classic request
// shapes must keep working and responses must carry no v2 code field.
func TestWireV1Shim(t *testing.T) {
	s := testSession(t, client.Config{Shards: 4, Policy: "greedy-c1", Verify: true})

	if resp := s.handle(request{Op: "begin", Txn: 1, Footprint: []int32{0, 4}}); resp.Outcome != "accepted" {
		t.Fatalf("begin: %+v", resp)
	}
	if resp := s.handle(request{Op: "read", Txn: 1, Entity: i32(4)}); resp.Outcome != "accepted" || resp.Code != "" {
		t.Fatalf("read: %+v (v1 must not carry a code)", resp)
	}
	resp := s.handle(request{Op: "write", Txn: 1, Entities: []int32{0}})
	if resp.Outcome != "accepted" || !resp.Completed {
		t.Fatalf("write: %+v", resp)
	}
	// A misroute rejection still answers rejected + aborted, code-free.
	s.handle(request{Op: "begin", Txn: 2, Footprint: []int32{0}})
	resp = s.handle(request{Op: "read", Txn: 2, Entity: i32(1)})
	if resp.Outcome != "rejected" || resp.Aborted == nil || *resp.Aborted != 2 || resp.Code != "" {
		t.Fatalf("misroute: %+v", resp)
	}
	// Unknown transactions are rejected (the engine's answer), as before.
	resp = s.handle(request{Op: "read", Txn: 99, Entity: i32(0)})
	if resp.Outcome != "rejected" || resp.Code != "" {
		t.Fatalf("unknown txn: %+v", resp)
	}
	// The batch op answers one result per step.
	resp = s.handle(request{Op: "batch", Steps: []request{
		{Op: "begin", Txn: 5, Footprint: []int32{1}},
		{Op: "read", Txn: 5, Entity: i32(1)},
		{Op: "write", Txn: 5, Entities: []int32{1}},
	}})
	if resp.Outcome != "ok" || len(resp.Results) != 3 || !resp.Results[2].Completed {
		t.Fatalf("batch: %+v", resp)
	}
	if resp := s.handle(request{Op: "stats"}); resp.Stats == nil || resp.Stats.Completed != 2 {
		t.Fatalf("stats: %+v", resp)
	}
}

// TestWireV2 negotiates the handshake and checks machine-readable codes,
// cross-shard 2PC commits, priority, and the deadline field.
func TestWireV2(t *testing.T) {
	s := testSession(t, client.Config{Shards: 4, Policy: "greedy-c1", Verify: true})

	resp := s.handle(request{Op: "hello", Version: 2})
	if resp.Outcome != "ok" || resp.Version != 2 {
		t.Fatalf("hello: %+v", resp)
	}
	if resp := s.handle(request{Op: "hello", Version: 99}); resp.Outcome != "error" || resp.Code != "protocol" {
		t.Fatalf("unsupported hello: %+v", resp)
	}

	// A cross-partition transaction with a generous deadline commits
	// through the 2PC path.
	if resp := s.handle(request{Op: "begin", Txn: 1, Footprint: []int32{0, 1}, DeadlineMS: 60_000, Priority: "high"}); resp.Outcome != "accepted" {
		t.Fatalf("cross begin: %+v", resp)
	}
	if resp := s.handle(request{Op: "read", Txn: 1, Entity: i32(0)}); resp.Outcome != "accepted" {
		t.Fatalf("cross read: %+v", resp)
	}
	resp = s.handle(request{Op: "write", Txn: 1, Entities: []int32{0, 1}})
	if resp.Outcome != "accepted" || !resp.Completed {
		t.Fatalf("cross write: %+v", resp)
	}

	// Taxonomy codes on the wire: a conflict cycle answers code "cycle".
	s.handle(request{Op: "begin", Txn: 10, Footprint: []int32{0, 4}})
	s.handle(request{Op: "begin", Txn: 11, Footprint: []int32{0, 4}})
	s.handle(request{Op: "read", Txn: 10, Entity: i32(0)})
	s.handle(request{Op: "read", Txn: 11, Entity: i32(4)})
	if resp := s.handle(request{Op: "write", Txn: 11, Entities: []int32{0}}); resp.Outcome != "accepted" {
		t.Fatalf("T11 write: %+v", resp)
	}
	resp = s.handle(request{Op: "write", Txn: 10, Entities: []int32{4}})
	if resp.Outcome != "rejected" || resp.Code != "cycle" {
		t.Fatalf("cycle write: %+v, want rejected/code=cycle", resp)
	}
	// …and a dead transaction answers code "txn-aborted".
	resp = s.handle(request{Op: "read", Txn: 10, Entity: i32(0)})
	if resp.Outcome != "rejected" || resp.Code != "txn-aborted" {
		t.Fatalf("dead txn read: %+v, want code=txn-aborted", resp)
	}
	// Misroutes carry their own code.
	s.handle(request{Op: "begin", Txn: 20, Footprint: []int32{0}})
	resp = s.handle(request{Op: "read", Txn: 20, Entity: i32(1)})
	if resp.Code != "misroute" {
		t.Fatalf("misroute: %+v, want code=misroute", resp)
	}

	// An expired deadline aborts the transaction server-side.
	if resp := s.handle(request{Op: "begin", Txn: 30, Footprint: []int32{2}, DeadlineMS: 15}); resp.Outcome != "accepted" {
		t.Fatalf("deadline begin: %+v", resp)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp = s.handle(request{Op: "read", Txn: 30, Entity: i32(2)})
		if resp.Outcome == "rejected" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("deadline never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp.Code != "txn-aborted" || !strings.Contains(resp.Error, "deadline") {
		t.Fatalf("post-deadline read: %+v, want code=txn-aborted with a deadline cause", resp)
	}

	// Duplicate begins are protocol errors.
	s.handle(request{Op: "begin", Txn: 40, Footprint: []int32{3}})
	resp = s.handle(request{Op: "begin", Txn: 40, Footprint: []int32{3}})
	if resp.Outcome != "error" || resp.Code != "protocol" {
		t.Fatalf("duplicate begin: %+v, want error/code=protocol", resp)
	}
	// Abort answers as in v1.
	if resp := s.handle(request{Op: "abort", Txn: 40}); resp.Outcome != "aborted" {
		t.Fatalf("abort: %+v", resp)
	}
	if resp := s.handle(request{Op: "abort", Txn: 40}); resp.Outcome != "error" {
		t.Fatalf("double abort: %+v", resp)
	}
}

// TestWireSessionCleanup: a disconnecting stream aborts whatever it left
// active (session and batch-path transactions alike).
func TestWireSessionCleanup(t *testing.T) {
	db, err := client.Open(client.Config{Shards: 2, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := db.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	s := newSession(db)
	s.handle(request{Op: "hello", Version: 2})
	s.handle(request{Op: "begin", Txn: 1, Footprint: []int32{0}})
	s.handle(request{Op: "batch", Steps: []request{{Op: "begin", Txn: 2, Footprint: []int32{1}}}})
	s.cleanup()
	if got := db.Stats().Aborted; got != 2 {
		t.Fatalf("Aborted after cleanup = %d, want 2", got)
	}
	// Both IDs are free again.
	if resp := s.handle(request{Op: "begin", Txn: 1, Footprint: []int32{0}}); resp.Outcome != "accepted" {
		t.Fatalf("reuse after cleanup: %+v", resp)
	}
	s.handle(request{Op: "abort", Txn: 1})
}
