GO ?= go

.PHONY: all build vet test race ci bench bench-check

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci: build vet race

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine' -benchtime 3000x -benchmem ./internal/engine/

# Fails if the engine hot path's allocs/op regresses above bench_budget.txt.
bench-check:
	./scripts/check_bench_budget.sh
