GO ?= go

.PHONY: all build vet test race ci lint lint-selftest bench bench-check bench-scale examples check-client-only

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Project-invariant static analysis (docs/lint.md): layering, hotpath
# (+compiler escape diff against lint/escape_allowlist.txt), shardowned,
# errtaxonomy, emitsafe.
lint:
	$(GO) run ./cmd/txgc-lint -escape ./...

# Prove the lint gate can fail: seed violations, expect nonzero exits.
lint-selftest:
	./scripts/lint_selftest.sh

ci: build vet lint race

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine' -benchtime 3000x -benchmem ./internal/engine/

# Fails if the engine hot path's allocs/op regresses above bench_budget.txt.
bench-check:
	./scripts/check_bench_budget.sh

# Multi-core scaling sweep: steps/s and client-observed p50/p99 per-step
# latency at 1, 2, 4, and 8 cores on the local and 5%-cross mixes.
bench-scale:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineParallelScaling' -benchtime 20000x -benchmem -cpu 1,2,4,8 ./internal/engine/

# Examples and cmds must reach the engine through txdel/client only.
check-client-only:
	./scripts/check_client_only.sh

# Build and run every example program against the public client facade.
examples: check-client-only vet
	@for d in examples/*/; do \
		echo "== go run ./$$d"; \
		$(GO) run ./$$d >/dev/null || exit 1; \
	done
	@echo "examples: all ran clean"
