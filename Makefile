GO ?= go

.PHONY: all build vet test race ci bench

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci: build vet race

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine' -benchtime 3000x ./internal/engine/
